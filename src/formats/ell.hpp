// ELLPACK/ITPACK format: K = max nnz/row slots per row, column-major
// (lane layout val[k * rows + r]) as GPU ELL kernels store it. Padded slots
// carry column index kInvalidIndex and value 0.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "matrix/coo.hpp"

namespace crsd {

template <Real T>
class EllMatrix {
 public:
  EllMatrix() = default;

  /// Builds from canonical COO with width = max nnz/row. If `width_limit`
  /// >= 0 the width is clamped and only the first `width_limit` entries of
  /// each row are stored (the HYB builder uses this; overflow entries are
  /// returned through `overflow` if provided).
  static EllMatrix from_coo(const Coo<T>& a, index_t width_limit = -1,
                            Coo<T>* overflow = nullptr) {
    CRSD_CHECK_MSG(a.is_canonical(), "ELL requires canonical COO input");
    EllMatrix m;
    m.num_rows_ = a.num_rows();
    m.num_cols_ = a.num_cols();

    std::vector<index_t> row_fill(static_cast<std::size_t>(a.num_rows()), 0);
    const auto& rows = a.row_indices();
    for (size64_t k = 0; k < a.nnz(); ++k) {
      ++row_fill[static_cast<std::size_t>(rows[k])];
    }
    index_t width = 0;
    for (index_t w : row_fill) width = std::max(width, w);
    if (width_limit >= 0) width = std::min(width, width_limit);
    m.width_ = width;

    const size64_t slots =
        static_cast<size64_t>(width) * static_cast<size64_t>(a.num_rows());
    m.col_idx_.assign(slots, kInvalidIndex);
    m.val_.assign(slots, T(0));

    std::fill(row_fill.begin(), row_fill.end(), 0);
    const auto& cols = a.col_indices();
    const auto& vals = a.values();
    for (size64_t k = 0; k < a.nnz(); ++k) {
      const index_t r = rows[k];
      index_t& fill = row_fill[static_cast<std::size_t>(r)];
      if (fill < width) {
        const size64_t slot = static_cast<size64_t>(fill) * a.num_rows() +
                              static_cast<size64_t>(r);
        m.col_idx_[slot] = cols[k];
        m.val_[slot] = vals[k];
        ++fill;
        ++m.nnz_;
      } else {
        CRSD_CHECK_MSG(overflow != nullptr,
                       "row " << r << " exceeds ELL width " << width);
        overflow->add(r, cols[k], vals[k]);
      }
    }
    return m;
  }

  index_t num_rows() const { return num_rows_; }
  index_t num_cols() const { return num_cols_; }
  index_t width() const { return width_; }
  size64_t nnz() const { return nnz_; }
  size64_t padded_elements() const { return val_.size(); }

  const std::vector<index_t>& col_idx() const { return col_idx_; }
  const std::vector<T>& values() const { return val_; }

  /// y = A*x, single thread. Slot-major iteration streams both lanes.
  void spmv(const T* x, T* y) const {
    std::fill(y, y + num_rows_, T(0));
    accumulate_rows(0, num_rows_, x, y);
  }

  /// y = A*x on `pool` (row partition).
  void spmv_parallel(ThreadPool& pool, const T* x, T* y) const {
    pool.parallel_for(0, num_rows_, [&](index_t rb, index_t re, int) {
      std::fill(y + rb, y + re, T(0));
      accumulate_rows(rb, re, x, y);
    });
  }

  /// y[rb..re) += A[rb..re)*x — exposed because the CRSD scatter phase and
  /// the HYB kernel reuse it.
  void accumulate_rows(index_t rb, index_t re, const T* x, T* y) const {
    for (index_t k = 0; k < width_; ++k) {
      const index_t* cols =
          col_idx_.data() + static_cast<size64_t>(k) * num_rows_;
      const T* vals = val_.data() + static_cast<size64_t>(k) * num_rows_;
      for (index_t r = rb; r < re; ++r) {
        const index_t c = cols[r];
        if (c != kInvalidIndex) y[r] += vals[r] * x[c];
      }
    }
  }

  /// Reconstructs the canonical COO from the populated slots.
  Coo<T> to_coo() const {
    Coo<T> out(num_rows_, num_cols_);
    out.reserve(nnz_);
    for (index_t k = 0; k < width_; ++k) {
      for (index_t r = 0; r < num_rows_; ++r) {
        const size64_t slot =
            static_cast<size64_t>(k) * num_rows_ + static_cast<size64_t>(r);
        if (col_idx_[slot] != kInvalidIndex && val_[slot] != T(0)) {
          out.add(r, col_idx_[slot], val_[slot]);
        }
      }
    }
    out.canonicalize();
    return out;
  }

  size64_t footprint_bytes() const {
    return col_idx_.size() * sizeof(index_t) + val_.size() * sizeof(T);
  }

 private:
  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  index_t width_ = 0;
  size64_t nnz_ = 0;
  std::vector<index_t> col_idx_;
  std::vector<T> val_;
};

}  // namespace crsd
