// HYB = ELL + COO tail, after Bell & Garland. A width threshold K splits
// each row: the first K entries go to ELL (regular, fast), the overflow to
// COO. The default K reproduces their behaviour on the paper's suite:
// uniform-width matrices (1–14) stay entirely in ELL; the astrophysics
// matrices put a fraction of a percent of entries in COO.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "formats/ell.hpp"
#include "matrix/coo.hpp"

namespace crsd {

template <Real T>
class HybMatrix {
 public:
  HybMatrix() = default;

  /// Chooses the ELL width K by minimizing a storage/throughput cost model
  /// (after cusp's split heuristic): every ELL slot — useful or padding —
  /// costs 1 unit; every COO tail entry costs kCooCostFactor units (the COO
  /// kernel moves 3 words per entry and reduces serially). Uniform row
  /// widths yield the maximum width (pure ELL); heavy-tailed rows truncate.
  static index_t default_split_width(const Coo<T>& a) {
    static constexpr double kCooCostFactor = 3.0;
    std::vector<index_t> row_fill(static_cast<std::size_t>(a.num_rows()), 0);
    for (index_t r : a.row_indices()) {
      ++row_fill[static_cast<std::size_t>(r)];
    }
    index_t max_width = 0;
    for (index_t w : row_fill) max_width = std::max(max_width, w);

    // rows_wider[k] = #rows with nnz > k; the COO tail at width k holds
    // sum_{j>k} rows_wider[j] entries.
    std::vector<size64_t> rows_wider(static_cast<std::size_t>(max_width) + 2,
                                     0);
    for (index_t w : row_fill) ++rows_wider[static_cast<std::size_t>(w)];
    for (index_t k = max_width; k >= 0; --k) {
      rows_wider[static_cast<std::size_t>(k)] +=
          rows_wider[static_cast<std::size_t>(k) + 1];
    }
    size64_t coo_nnz = 0;
    for (index_t k = 1; k <= max_width; ++k) {
      coo_nnz += rows_wider[static_cast<std::size_t>(k)];
    }
    index_t best_k = 0;
    double best_cost = kCooCostFactor * double(coo_nnz);
    for (index_t k = 1; k <= max_width; ++k) {
      coo_nnz -= rows_wider[static_cast<std::size_t>(k)];
      const double cost = double(a.num_rows()) * double(k) +
                          kCooCostFactor * double(coo_nnz);
      if (cost < best_cost) {
        best_cost = cost;
        best_k = k;
      }
    }
    return best_k;
  }

  /// Builds with the given split width (or the default when < 0).
  static HybMatrix from_coo(const Coo<T>& a, index_t split_width = -1) {
    CRSD_CHECK_MSG(a.is_canonical(), "HYB requires canonical COO input");
    HybMatrix m;
    if (split_width < 0) split_width = default_split_width(a);
    Coo<T> tail(a.num_rows(), a.num_cols());
    m.ell_ = EllMatrix<T>::from_coo(a, split_width, &tail);
    tail.canonicalize();
    m.coo_row_ = tail.row_indices();
    m.coo_col_ = tail.col_indices();
    m.coo_val_ = tail.values();
    return m;
  }

  index_t num_rows() const { return ell_.num_rows(); }
  index_t num_cols() const { return ell_.num_cols(); }
  size64_t nnz() const { return ell_.nnz() + coo_val_.size(); }
  size64_t coo_nnz() const { return coo_val_.size(); }
  const EllMatrix<T>& ell() const { return ell_; }
  const std::vector<index_t>& coo_row() const { return coo_row_; }
  const std::vector<index_t>& coo_col() const { return coo_col_; }
  const std::vector<T>& coo_val() const { return coo_val_; }

  /// y = A*x, single thread.
  void spmv(const T* x, T* y) const {
    ell_.spmv(x, y);
    accumulate_coo(x, y);
  }

  /// y = A*x on `pool`. The COO tail is tiny (sub-percent of nnz) and is
  /// applied serially after the parallel ELL phase; row-sorted COO would
  /// otherwise need per-thread row ranges.
  void spmv_parallel(ThreadPool& pool, const T* x, T* y) const {
    ell_.spmv_parallel(pool, x, y);
    accumulate_coo(x, y);
  }

  /// Reconstructs the canonical COO from the ELL part plus the tail.
  Coo<T> to_coo() const {
    Coo<T> merged(num_rows(), num_cols());
    const Coo<T> head = ell_.to_coo();
    merged.reserve(head.nnz() + coo_val_.size());
    for (size64_t k = 0; k < head.nnz(); ++k) {
      merged.add(head.row_indices()[k], head.col_indices()[k],
                 head.values()[k]);
    }
    for (std::size_t k = 0; k < coo_val_.size(); ++k) {
      merged.add(coo_row_[k], coo_col_[k], coo_val_[k]);
    }
    merged.canonicalize();
    return merged;
  }

  size64_t footprint_bytes() const {
    return ell_.footprint_bytes() +
           coo_row_.size() * sizeof(index_t) +
           coo_col_.size() * sizeof(index_t) + coo_val_.size() * sizeof(T);
  }

 private:
  void accumulate_coo(const T* x, T* y) const {
    for (std::size_t k = 0; k < coo_val_.size(); ++k) {
      y[coo_row_[k]] += coo_val_[k] * x[coo_col_[k]];
    }
  }

  EllMatrix<T> ell_;
  std::vector<index_t> coo_row_;
  std::vector<index_t> coo_col_;
  std::vector<T> coo_val_;
};

}  // namespace crsd
