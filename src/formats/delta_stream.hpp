// Byte-granular delta codec for ascending column-index sequences.
//
// This generalizes the fixed "1-byte delta + 0xff escape" scheme prototyped
// in formats/dcsr.hpp into a proper varint (LEB128) stream usable as an
// optional CRSD scatter-row representation: per row, the first column is
// encoded absolute and each subsequent column as the strictly positive gap
// to its predecessor. Banded/scattered rows with small gaps compress to
// ~1 byte per index versus 4 for raw int32.
//
// The decoder is deliberately paranoid — streams may arrive from disk or a
// hand-mutated test fixture, so every read is bounds-checked and zero gaps
// (which would mean duplicate columns) are rejected rather than decoded
// into out-of-range gathers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace crsd::delta {

/// Appends `v` as LEB128 (7 bits per byte, high bit = continuation).
inline void append_varint(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>((v & 0x7fu) | 0x80u));
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Reads one varint from data[pos..end). Returns false (leaving `v`
/// unspecified) on truncation or an over-long (>5 byte) encoding.
inline bool read_varint(const std::uint8_t* data, size64_t end, size64_t& pos,
                        std::uint32_t& v) {
  std::uint32_t value = 0;
  for (int shift = 0; shift < 35; shift += 7) {
    if (pos >= end) return false;  // truncated
    const std::uint8_t byte = data[pos++];
    value |= static_cast<std::uint32_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      v = value;
      return true;
    }
  }
  return false;  // over-long encoding
}

/// Encodes a strictly ascending, non-negative column list: absolute first
/// column, then positive gaps. Appends to `out`.
inline void encode_ascending(const index_t* cols, index_t n,
                             std::vector<std::uint8_t>& out) {
  if (n <= 0) return;
  CRSD_ASSERT(cols[0] >= 0);
  append_varint(out, static_cast<std::uint32_t>(cols[0]));
  for (index_t k = 1; k < n; ++k) {
    CRSD_ASSERT(cols[k] > cols[k - 1]);
    append_varint(out,
                  static_cast<std::uint32_t>(cols[k]) -
                      static_cast<std::uint32_t>(cols[k - 1]));
  }
}

/// Decodes one row's stream slice data[begin..end) and appends the columns
/// to `out`. Returns false on any malformation: truncated/over-long varint,
/// a zero gap (duplicate column), or a column outside [0, num_cols).
inline bool decode_ascending(const std::uint8_t* data, size64_t begin,
                             size64_t end, index_t num_cols,
                             std::vector<index_t>& out) {
  size64_t pos = begin;
  bool first = true;
  std::int64_t col = 0;
  while (pos < end) {
    std::uint32_t v = 0;
    if (!read_varint(data, end, pos, v)) return false;
    if (first) {
      col = static_cast<std::int64_t>(v);
      first = false;
    } else {
      if (v == 0) return false;  // zero gap: duplicate column
      col += static_cast<std::int64_t>(v);
    }
    if (col < 0 || col >= static_cast<std::int64_t>(num_cols)) return false;
    out.push_back(static_cast<index_t>(col));
  }
  return true;
}

}  // namespace crsd::delta
