// Delta-compressed CSR — the index-compression baseline of the paper's
// related work (Willcock & Lumsdaine's DCSR, Kourtis et al.): column
// indices are stored as deltas from the previous column in the row, in a
// variable-width byte stream (1 byte when the delta fits, otherwise an
// escape marker followed by 4 bytes). Banded/diagonal matrices compress
// their index stream ~4x; the decode cost is paid in the kernel.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "matrix/coo.hpp"

namespace crsd {

template <Real T>
class DcsrMatrix {
 public:
  DcsrMatrix() = default;

  /// Encodability guard for `from_coo`. The encoder assumes every column
  /// fits the 4-byte raw path and every in-row delta is strictly positive;
  /// a column outside [0, num_cols) or a non-ascending pair (possible when
  /// a caller marks hand-built COO canonical without sorting it) would
  /// otherwise corrupt the byte stream silently. Returns one kDeltaStream
  /// diagnostic per offending nonzero.
  static std::vector<check::Diagnostic> check_encode_limits(const Coo<T>& a) {
    std::vector<check::Diagnostic> out;
    auto flag = [&out](size64_t k, const std::string& what) {
      check::Diagnostic d;
      d.code = check::Code::kDeltaStream;
      d.offset = static_cast<std::int64_t>(k);
      d.message = what;
      out.push_back(std::move(d));
    };
    const auto& rows = a.row_indices();
    const auto& cols = a.col_indices();
    for (size64_t k = 0; k < a.nnz(); ++k) {
      if (cols[k] < 0 || cols[k] >= a.num_cols()) {
        flag(k, "column " + std::to_string(cols[k]) +
                    " is outside [0, " + std::to_string(a.num_cols()) +
                    ") and does not fit the 4-byte escape path");
      } else if (k > 0 && rows[k] == rows[k - 1] && cols[k] <= cols[k - 1]) {
        flag(k, "non-ascending column pair (" + std::to_string(cols[k - 1]) +
                    ", " + std::to_string(cols[k]) + ") in row " +
                    std::to_string(rows[k]) +
                    "; deltas must be strictly positive");
      }
    }
    return out;
  }

  static DcsrMatrix from_coo(const Coo<T>& a) {
    CRSD_CHECK_MSG(a.is_canonical(), "DCSR requires canonical COO input");
    if (std::vector<check::Diagnostic> bad = check_encode_limits(a);
        !bad.empty()) {
      throw check::DiagnosticError(
          "DCSR encode rejected input:\n" + check::format_diagnostics(bad),
          std::move(bad));
    }
    DcsrMatrix m;
    m.num_rows_ = a.num_rows();
    m.num_cols_ = a.num_cols();
    m.val_ = a.values();
    m.row_ptr_.assign(static_cast<std::size_t>(a.num_rows()) + 1, 0);
    m.stream_ptr_.assign(static_cast<std::size_t>(a.num_rows()) + 1, 0);

    const auto& rows = a.row_indices();
    const auto& cols = a.col_indices();
    std::vector<index_t> row_nnz(static_cast<std::size_t>(a.num_rows()), 0);
    for (size64_t k = 0; k < a.nnz(); ++k) {
      ++row_nnz[static_cast<std::size_t>(rows[k])];
    }
    for (std::size_t r = 0; r < row_nnz.size(); ++r) {
      m.row_ptr_[r + 1] = m.row_ptr_[r] + row_nnz[r];
    }

    // Encode: first column of a row as raw 4 bytes, then deltas.
    size64_t k = 0;
    for (index_t r = 0; r < a.num_rows(); ++r) {
      index_t prev = 0;
      const size64_t end = m.row_ptr_[static_cast<std::size_t>(r) + 1];
      bool first = true;
      while (k < end) {
        const index_t c = cols[k];
        if (first) {
          m.emit_raw(c);
          first = false;
        } else {
          const index_t delta = c - prev;  // strictly positive (canonical)
          CRSD_ASSERT(delta > 0);
          if (delta < kEscape) {
            m.stream_.push_back(static_cast<std::uint8_t>(delta));
          } else {
            m.stream_.push_back(kEscape);
            m.emit_raw(delta);
          }
        }
        prev = c;
        ++k;
      }
      m.stream_ptr_[static_cast<std::size_t>(r) + 1] =
          static_cast<size64_t>(m.stream_.size());
    }
    return m;
  }

  index_t num_rows() const { return num_rows_; }
  index_t num_cols() const { return num_cols_; }
  size64_t nnz() const { return val_.size(); }
  size64_t index_stream_bytes() const { return stream_.size(); }

  /// Index bytes relative to plain CSR's 4 bytes per nonzero.
  double index_compression() const {
    return nnz() == 0 ? 1.0
                      : double(stream_.size()) / (4.0 * double(nnz()));
  }

  /// y = A*x, single thread, decoding the delta stream on the fly.
  void spmv(const T* x, T* y) const {
    for (index_t r = 0; r < num_rows_; ++r) {
      T sum = T(0);
      size64_t pos = stream_ptr_[static_cast<std::size_t>(r)];
      index_t col = 0;
      const index_t begin = row_ptr_[static_cast<std::size_t>(r)];
      const index_t end = row_ptr_[static_cast<std::size_t>(r) + 1];
      for (index_t k = begin; k < end; ++k) {
        if (k == begin) {
          col = read_raw(pos);
        } else {
          const std::uint8_t byte = stream_[pos++];
          col += byte == kEscape ? read_raw(pos) : static_cast<index_t>(byte);
        }
        sum += val_[static_cast<std::size_t>(k)] * x[col];
      }
      y[r] = sum;
    }
  }

  /// y = A*x on `pool` (row partition; each row's stream decodes
  /// independently thanks to the per-row stream pointers).
  void spmv_parallel(ThreadPool& pool, const T* x, T* y) const {
    pool.parallel_for(0, num_rows_, [&](index_t rb, index_t re, int) {
      for (index_t r = rb; r < re; ++r) {
        T sum = T(0);
        size64_t pos = stream_ptr_[static_cast<std::size_t>(r)];
        index_t col = 0;
        const index_t begin = row_ptr_[static_cast<std::size_t>(r)];
        const index_t end = row_ptr_[static_cast<std::size_t>(r) + 1];
        for (index_t k = begin; k < end; ++k) {
          if (k == begin) {
            col = read_raw(pos);
          } else {
            const std::uint8_t byte = stream_[pos++];
            col +=
                byte == kEscape ? read_raw(pos) : static_cast<index_t>(byte);
          }
          sum += val_[static_cast<std::size_t>(k)] * x[col];
        }
        y[r] = sum;
      }
    });
  }

  size64_t footprint_bytes() const {
    return row_ptr_.size() * sizeof(index_t) +
           stream_ptr_.size() * sizeof(size64_t) + stream_.size() +
           val_.size() * sizeof(T);
  }

  /// Reconstructs the canonical COO (round-trip verification).
  Coo<T> to_coo() const {
    Coo<T> out(num_rows_, num_cols_);
    out.reserve(nnz());
    for (index_t r = 0; r < num_rows_; ++r) {
      size64_t pos = stream_ptr_[static_cast<std::size_t>(r)];
      index_t col = 0;
      const index_t begin = row_ptr_[static_cast<std::size_t>(r)];
      const index_t end = row_ptr_[static_cast<std::size_t>(r) + 1];
      for (index_t k = begin; k < end; ++k) {
        if (k == begin) {
          col = read_raw(pos);
        } else {
          const std::uint8_t byte = stream_[pos++];
          col += byte == kEscape ? read_raw(pos) : static_cast<index_t>(byte);
        }
        out.add(r, col, val_[static_cast<std::size_t>(k)]);
      }
    }
    out.mark_canonical();
    return out;
  }

 private:
  static constexpr std::uint8_t kEscape = 0xff;

  void emit_raw(index_t v) {
    std::uint8_t bytes[4];
    std::memcpy(bytes, &v, 4);
    stream_.insert(stream_.end(), bytes, bytes + 4);
  }

  index_t read_raw(size64_t& pos) const {
    index_t v;
    std::memcpy(&v, stream_.data() + pos, 4);
    pos += 4;
    return v;
  }

  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  std::vector<index_t> row_ptr_;
  std::vector<size64_t> stream_ptr_;
  std::vector<std::uint8_t> stream_;
  std::vector<T> val_;
};

}  // namespace crsd
