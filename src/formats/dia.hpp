// DIA (diagonal) format, as in Saad and Bell & Garland: one full-length
// value lane per occupied diagonal, padded with zeros where the diagonal is
// absent or out of range. This is the format whose padding blow-up on
// scattered-diagonal matrices motivates CRSD.
#pragma once

#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "matrix/coo.hpp"
#include "matrix/stats.hpp"

namespace crsd {

template <Real T>
class DiaMatrix {
 public:
  DiaMatrix() = default;

  /// Value elements DIA needs for a matrix with the given structure.
  static size64_t required_elements(const StructureStats& stats) {
    return stats.dia_padded_elements();
  }

  /// Builds from canonical COO. Throws crsd::Error if the padded value array
  /// would exceed `max_elements` — callers use this to reproduce the paper's
  /// device-memory overflow for the af_*_k101 matrices in double precision.
  static DiaMatrix from_coo(
      const Coo<T>& a,
      size64_t max_elements = std::numeric_limits<size64_t>::max()) {
    CRSD_CHECK_MSG(a.is_canonical(), "DIA requires canonical COO input");
    DiaMatrix m;
    m.num_rows_ = a.num_rows();
    m.num_cols_ = a.num_cols();
    m.nnz_ = a.nnz();

    // Collect occupied offsets (input is sorted by row, not offset).
    std::vector<diag_offset_t> offsets;
    {
      std::vector<bool> seen(
          static_cast<std::size_t>(a.num_rows()) + a.num_cols(), false);
      const auto& rows = a.row_indices();
      const auto& cols = a.col_indices();
      for (size64_t k = 0; k < a.nnz(); ++k) {
        const std::size_t slot =
            static_cast<std::size_t>(cols[k] - rows[k] + a.num_rows() - 1);
        if (!seen[slot]) {
          seen[slot] = true;
          offsets.push_back(cols[k] - rows[k]);
        }
      }
      std::sort(offsets.begin(), offsets.end());
    }

    const size64_t elements =
        offsets.size() * static_cast<size64_t>(a.num_rows());
    CRSD_CHECK_MSG(elements <= max_elements,
                   "DIA padded storage (" << elements << " elements, "
                                          << offsets.size()
                                          << " diagonals) exceeds the limit of "
                                          << max_elements << " elements");

    m.offsets_ = std::move(offsets);
    m.val_.assign(elements, T(0));

    // Lane layout is diagonal-major (val[d * rows + r]), the layout GPU DIA
    // kernels use so that consecutive threads read consecutive addresses.
    std::vector<index_t> offset_slot(
        static_cast<std::size_t>(a.num_rows()) + a.num_cols(), kInvalidIndex);
    for (std::size_t d = 0; d < m.offsets_.size(); ++d) {
      offset_slot[static_cast<std::size_t>(m.offsets_[d] + a.num_rows() - 1)] =
          static_cast<index_t>(d);
    }
    const auto& rows = a.row_indices();
    const auto& cols = a.col_indices();
    const auto& vals = a.values();
    for (size64_t k = 0; k < a.nnz(); ++k) {
      const index_t d =
          offset_slot[static_cast<std::size_t>(cols[k] - rows[k] +
                                               a.num_rows() - 1)];
      m.val_[static_cast<size64_t>(d) * a.num_rows() +
             static_cast<size64_t>(rows[k])] = vals[k];
    }
    return m;
  }

  index_t num_rows() const { return num_rows_; }
  index_t num_cols() const { return num_cols_; }
  size64_t nnz() const { return nnz_; }
  index_t num_diagonals() const { return static_cast<index_t>(offsets_.size()); }

  const std::vector<diag_offset_t>& offsets() const { return offsets_; }
  const std::vector<T>& values() const { return val_; }

  /// y = A*x, single thread. Iterates diagonals outer so each lane streams.
  void spmv(const T* x, T* y) const {
    std::fill(y, y + num_rows_, T(0));
    for (std::size_t d = 0; d < offsets_.size(); ++d) {
      const diag_offset_t off = offsets_[d];
      const T* lane = val_.data() + d * static_cast<size64_t>(num_rows_);
      const index_t r0 = off < 0 ? -off : 0;
      const index_t r1 = std::min<index_t>(
          num_rows_, static_cast<index_t>(num_cols_ - off));
      for (index_t r = r0; r < r1; ++r) {
        y[r] += lane[r] * x[r + off];
      }
    }
  }

  /// y = A*x on `pool`: rows partitioned, each thread walks all diagonals
  /// over its row block (no write conflicts).
  void spmv_parallel(ThreadPool& pool, const T* x, T* y) const {
    pool.parallel_for(0, num_rows_, [&](index_t rb, index_t re, int) {
      std::fill(y + rb, y + re, T(0));
      for (std::size_t d = 0; d < offsets_.size(); ++d) {
        const diag_offset_t off = offsets_[d];
        const T* lane = val_.data() + d * static_cast<size64_t>(num_rows_);
        const index_t r0 = std::max<index_t>(rb, off < 0 ? -off : 0);
        const index_t r1 = std::min<index_t>(
            re, static_cast<index_t>(num_cols_ - off));
        for (index_t r = r0; r < r1; ++r) {
          y[r] += lane[r] * x[r + off];
        }
      }
    });
  }

  /// Reconstructs the canonical COO (explicit zeros in padded slots drop).
  Coo<T> to_coo() const {
    Coo<T> out(num_rows_, num_cols_);
    out.reserve(nnz_);
    for (std::size_t d = 0; d < offsets_.size(); ++d) {
      const diag_offset_t off = offsets_[d];
      const T* lane = val_.data() + d * static_cast<size64_t>(num_rows_);
      const index_t r0 = off < 0 ? -off : 0;
      const index_t r1 = std::min<index_t>(
          num_rows_, static_cast<index_t>(num_cols_ - off));
      for (index_t r = r0; r < r1; ++r) {
        if (lane[r] != T(0)) out.add(r, r + off, lane[r]);
      }
    }
    out.canonicalize();
    return out;
  }

  size64_t footprint_bytes() const {
    return offsets_.size() * sizeof(diag_offset_t) + val_.size() * sizeof(T);
  }

 private:
  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  size64_t nnz_ = 0;
  std::vector<diag_offset_t> offsets_;
  std::vector<T> val_;
};

}  // namespace crsd
