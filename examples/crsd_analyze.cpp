// crsd_analyze — static kernel-access analyzer over the paper suite.
//
// For every Table V matrix and every storage mode (fp64, fp64+i16,
// fp64+delta, fp32+i16, fp32+delta, fp16+i16) the tool builds the CRSD
// container, runs the static analyzer (analysis/analyze.hpp) on the launch
// it would issue, and prints any finding as a check::Diagnostic. With
// cross-validation on (the default) it also executes the launch on a fresh
// simulated device and compares the statically predicted DRAM transactions
// against the measured counters — the prediction must stay within 10%
// relative error (it is exact by construction; the gate catches model
// drift).
//
// Exit status: 0 when every launch is proven safe and every prediction is
// inside the gate; 1 otherwise — so CI can run this binary as a gate.
//
// Usage: crsd_analyze [--scale S] [--mrows M] [--matrix ID] [--mode NAME]
//                     [--no-measure] [--no-local-memory] [--interpreted]
//                     [--json PATH]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "check/diagnostics.hpp"
#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "gpusim/device.hpp"
#include "kernels/crsd_gpu.hpp"
#include "matrix/paper_suite.hpp"

namespace {

using namespace crsd;

struct Mode {
  const char* name;
  StorageOptions storage;
};

const std::vector<Mode>& modes() {
  static const std::vector<Mode> m = {
      {"fp64", {}},
      {"fp64+i16", {ValuePrecision::kNative, true, false}},
      {"fp64+delta", {ValuePrecision::kNative, false, true}},
      {"fp32+i16", {ValuePrecision::kFloat32, true, false}},
      {"fp32+delta", {ValuePrecision::kFloat32, false, true}},
      {"fp16+i16", {ValuePrecision::kFloat16, true, false}},
  };
  return m;
}

struct Options {
  double scale = 0.05;
  index_t mrows = 64;
  std::optional<int> only_matrix;
  std::optional<std::string> only_mode;
  bool measure = true;
  bool use_local_memory = true;
  bool jit_codelet = true;
  std::string json_path;
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      CRSD_CHECK_MSG(i + 1 < argc, "missing value after " << a);
      return argv[++i];
    };
    if (a == "--scale") {
      o.scale = std::stod(next());
    } else if (a == "--mrows") {
      o.mrows = static_cast<index_t>(std::stol(next()));
    } else if (a == "--matrix") {
      o.only_matrix = std::stoi(next());
    } else if (a == "--mode") {
      o.only_mode = next();
    } else if (a == "--no-measure") {
      o.measure = false;
    } else if (a == "--no-local-memory") {
      o.use_local_memory = false;
    } else if (a == "--interpreted") {
      o.jit_codelet = false;
    } else if (a == "--json") {
      o.json_path = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      std::exit(2);
    }
  }
  return o;
}

struct Cell {
  int id = 0;
  std::string matrix;
  std::string mode;
  std::size_t findings = 0;
  size64_t static_transactions = 0;
  size64_t measured_transactions = 0;
  double rel_error = 0.0;
  double predicted_seconds = 0.0;
  double measured_seconds = 0.0;
  double worst_tpw = 0.0;  ///< worst per-pattern transactions/wavefront
};

void write_json(const std::vector<Cell>& cells, const Options& o,
                bool pass) {
  std::ofstream out(o.json_path);
  out << "{\n  \"tool\": \"crsd_analyze\",\n  \"scale\": " << o.scale
      << ",\n  \"mrows\": " << o.mrows << ",\n  \"gate_rel_error\": 0.10,\n"
      << "  \"launches\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"id\": %d, \"matrix\": \"%s\", \"mode\": \"%s\", "
        "\"findings\": %zu, \"static_dram_transactions\": %llu, "
        "\"measured_dram_transactions\": %llu, \"rel_error\": %.6f, "
        "\"predicted_seconds\": %.6e, \"measured_seconds\": %.6e, "
        "\"worst_transactions_per_wavefront\": %.3f}%s\n",
        c.id, c.matrix.c_str(), c.mode.c_str(), c.findings,
        static_cast<unsigned long long>(c.static_transactions),
        static_cast<unsigned long long>(c.measured_transactions), c.rel_error,
        c.predicted_seconds, c.measured_seconds, c.worst_tpw,
        i + 1 < cells.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse(argc, argv);

  std::printf("== crsd_analyze: static bounds/race/coalescing proof over the "
              "paper suite ==\n");
  std::printf("scale %.3f, mrows %d, local memory %s, %s kernel%s\n\n",
              opts.scale, opts.mrows, opts.use_local_memory ? "on" : "off",
              opts.jit_codelet ? "jit" : "interpreted",
              opts.measure ? ", cross-validating vs gpusim" : "");
  std::printf("%3s %-14s %-10s %8s %12s %12s %8s\n", "id", "matrix", "mode",
              "findings", "txn(static)", "txn(meas)", "relerr");

  std::vector<Cell> cells;
  std::size_t total_findings = 0;
  double worst_rel_error = 0.0;
  bool gate_ok = true;

  for (const auto& spec : paper_suite()) {
    if (opts.only_matrix && *opts.only_matrix != spec.id) continue;
    const Coo<double> a = spec.generate(opts.scale);

    for (const auto& mode : modes()) {
      if (opts.only_mode && *opts.only_mode != mode.name) continue;
      CrsdConfig cfg;
      cfg.mrows = opts.mrows;
      cfg.storage = mode.storage;
      const CrsdMatrix<double> m = build(a, cfg);

      analysis::AnalyzeOptions aopts;
      aopts.use_local_memory = opts.use_local_memory;
      aopts.jit_codelet = opts.jit_codelet;
      const analysis::AnalysisReport rep = analysis::analyze_crsd_launch(m, aopts);

      Cell c;
      c.id = spec.id;
      c.matrix = spec.name;
      c.mode = mode.name;
      c.findings = rep.diagnostics.size();
      c.static_transactions = rep.coalescing.counters.global_load_transactions +
                              rep.coalescing.counters.global_store_transactions;
      c.predicted_seconds = rep.coalescing.predicted_seconds;
      for (const auto& pt : rep.coalescing.per_pattern) {
        c.worst_tpw = std::max(c.worst_tpw, pt.transactions_per_wavefront());
      }
      total_findings += c.findings;
      if (!rep.diagnostics.empty()) {
        std::printf("%3d %-14s %-10s UNSAFE:\n%s", spec.id, spec.name.c_str(),
                    mode.name, check::format_diagnostics(rep.diagnostics).c_str());
      }

      if (opts.measure) {
        // A fresh device per launch: the analyzer models the allocator of an
        // unused device, and buffer base addresses feed the cache set
        // mapping, so reusing one device would shift the measured counters.
        gpusim::Device dev(aopts.spec);
        Rng rng(2026);
        std::vector<double> x(static_cast<std::size_t>(m.num_cols()));
        for (auto& v : x) v = rng.next_double(-1.0, 1.0);
        std::vector<double> y(static_cast<std::size_t>(m.num_rows()));
        kernels::CrsdGpuOptions gopts;
        gopts.use_local_memory = opts.use_local_memory;
        gopts.jit_codelet = opts.jit_codelet;
        const gpusim::LaunchResult launch =
            kernels::gpu_spmv_crsd(dev, m, x.data(), y.data(), gopts);
        c.measured_transactions = launch.counters.global_load_transactions +
                                  launch.counters.global_store_transactions;
        c.measured_seconds = launch.seconds;
        const double denom = std::max<double>(1.0, double(c.measured_transactions));
        c.rel_error =
            std::abs(double(c.static_transactions) -
                     double(c.measured_transactions)) / denom;
        worst_rel_error = std::max(worst_rel_error, c.rel_error);
        if (c.rel_error > 0.10) gate_ok = false;
      }

      std::printf("%3d %-14s %-10s %8zu %12llu %12llu %7.4f%%\n", spec.id,
                  spec.name.c_str(), mode.name, c.findings,
                  static_cast<unsigned long long>(c.static_transactions),
                  static_cast<unsigned long long>(c.measured_transactions),
                  100.0 * c.rel_error);
      cells.push_back(std::move(c));
    }
  }

  const bool pass = total_findings == 0 && gate_ok;
  std::printf("\n%zu launches analyzed, %zu findings, worst DRAM-transaction "
              "rel error %.4f%% (gate 10%%): %s\n",
              cells.size(), total_findings, 100.0 * worst_rel_error,
              pass ? "PASS" : "FAIL");
  if (!opts.json_path.empty()) write_json(cells, opts, pass);
  return pass ? 0 : 1;
}
