// Format advisor: analyze a sparse matrix (a Matrix Market file or a named
// matrix from the paper's suite), print its diagonal structure, the storage
// footprint of every format, and the simulated-GPU performance ranking, then
// recommend a format. This is the inspector a user would run before picking
// a storage scheme.
//
//   ./examples/format_advisor path/to/matrix.mtx
//   ./examples/format_advisor --suite kim1 [--scale 0.05]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "crsd.hpp"

namespace {

crsd::Coo<double> load_matrix(int argc, char** argv) {
  using namespace crsd;
  std::string suite_name;
  double scale = 0.05;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
      suite_name = argv[++i];
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else {
      path = argv[i];
    }
  }
  if (!suite_name.empty()) {
    for (const auto& spec : paper_suite()) {
      if (spec.name == suite_name) return spec.generate(scale);
    }
    throw Error("unknown suite matrix: " + suite_name);
  }
  if (path.empty()) {
    std::printf("no input given; using --suite s80_80_50 --scale 0.05\n");
    return paper_matrix(18).generate(0.05);
  }
  return read_matrix_market_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crsd;
  Coo<double> a;
  try {
    a = load_matrix(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("%s", spy_string(a, 48).c_str());
  const StructureStats s = compute_stats(a);
  std::printf("matrix: %d x %d, %llu nnz (%.2f per row, min %d / max %d)\n",
              s.num_rows, s.num_cols, static_cast<unsigned long long>(s.nnz),
              s.avg_nnz_per_row, s.min_nnz_per_row, s.max_nnz_per_row);
  std::printf("diagonals: %llu occupied; DIA efficiency %.1f%%, ELL "
              "efficiency %.1f%%\n",
              static_cast<unsigned long long>(s.num_diagonals()),
              100.0 * s.dia_efficiency(), 100.0 * s.ell_efficiency());

  // Ten densest diagonals.
  std::vector<DiagonalInfo> diags = s.diagonals;
  std::sort(diags.begin(), diags.end(),
            [](const DiagonalInfo& x, const DiagonalInfo& y) {
              return x.nnz > y.nnz;
            });
  std::printf("densest diagonals (offset: nnz/length):");
  for (std::size_t i = 0; i < diags.size() && i < 10; ++i) {
    std::printf(" %d:%.0f%%", diags[i].offset, 100.0 * diags[i].fill());
  }
  std::printf("\n");

  const auto crsd_m = build(a, CrsdConfig{.mrows = 64});
  const CrsdStats cst = crsd_m.stats();
  std::printf("CRSD analysis: %d patterns, fill %.1f%%, %d scatter rows, AD "
              "share %.0f%%\n\n",
              cst.num_patterns, 100.0 * cst.fill_ratio(), cst.num_scatter_rows,
              100.0 * cst.ad_diag_fraction);

  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  std::printf("%-6s %14s %12s\n", "format", "footprint MiB", "sim GFLOPS");
  Format best = Format::kCsr;
  double best_gflops = 0;
  for (Format f : {Format::kDia, Format::kEll, Format::kCsr, Format::kHyb,
                   Format::kCrsd}) {
    double footprint_mib = 0;
    switch (f) {
      case Format::kCsr:
        footprint_mib = double(CsrMatrix<double>::from_coo(a).footprint_bytes());
        break;
      case Format::kDia:
        footprint_mib =
            double(compute_stats(a).dia_padded_elements() * sizeof(double));
        break;
      case Format::kEll:
        footprint_mib = double(EllMatrix<double>::from_coo(a).footprint_bytes());
        break;
      case Format::kHyb:
        footprint_mib = double(HybMatrix<double>::from_coo(a).footprint_bytes());
        break;
      default:
        footprint_mib = double(crsd_m.footprint_bytes());
        break;
    }
    footprint_mib /= double(1 << 20);
    gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
    try {
      const auto r = kernels::spmv(dev, f, a, x.data(), y.data());
      const double gflops = r.gflops(a.nnz());
      std::printf("%-6s %14.2f %12.2f\n", format_name(f), footprint_mib,
                  gflops);
      if (gflops > best_gflops) {
        best_gflops = gflops;
        best = f;
      }
    } catch (const Error&) {
      std::printf("%-6s %14.2f %12s\n", format_name(f), footprint_mib, "OOM");
    }
  }
  std::printf("\nrecommendation: %s (%.2f GFLOPS simulated on a Tesla "
              "C2050)\n",
              format_name(best), best_gflops);

  // Related-work formats (CPU-side, informational): register blocking and
  // index compression.
  const auto [br, bc] = BcsrMatrix<double>::choose_block_size(a);
  const auto bcsr = BcsrMatrix<double>::from_coo(a, br, bc);
  const auto dcsr = DcsrMatrix<double>::from_coo(a);
  std::printf("\nrelated-work baselines: BCSR best block %dx%d (fill-in "
              "%.2fx, %.2f MiB); DCSR index stream %.0f%% of CSR's "
              "(%.2f MiB total)\n",
              br, bc, bcsr.fill_in(),
              double(bcsr.footprint_bytes()) / double(1 << 20),
              100.0 * dcsr.index_compression(),
              double(dcsr.footprint_bytes()) / double(1 << 20));
  return 0;
}
