// Astrophysics workload (the paper's s*/us* family, §IV): a core-convection
// FDM matrix with broken coupling diagonals and scatter points. Runs every
// storage format through the simulated Tesla C2050 and reports GFLOPS plus
// the traffic breakdown, then runs a pseudo-time-stepping loop (repeated
// SpMV) with the winner to show the amortized picture.
//
//   ./examples/astro_spmv [nx ny nz] [--unstructured]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "crsd.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  index_t nx = 40, ny = 40, nz = 25;
  bool unstructured = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--unstructured") == 0) {
      unstructured = true;
    } else if (i + 2 < argc) {
      nx = std::atoi(argv[i]);
      ny = std::atoi(argv[i + 1]);
      nz = std::atoi(argv[i + 2]);
      i += 2;
    }
  }

  Rng rng(42);
  const auto a = astro_convection(nx, ny, nz, unstructured, rng);
  const auto stats = compute_stats(a);
  std::printf("core convection grid %dx%dx%d (%s): %d rows, %llu nnz, "
              "%llu diagonals, %.1f nnz/row\n",
              nx, ny, nz, unstructured ? "unstructured" : "structured",
              a.num_rows(), static_cast<unsigned long long>(a.nnz()),
              static_cast<unsigned long long>(stats.num_diagonals()),
              stats.avg_nnz_per_row);

  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));

  std::printf("\n%-6s %10s %14s %12s %10s\n", "format", "GFLOPS", "load MiB",
              "store MiB", "barriers");
  Format best = Format::kCsr;
  double best_gflops = 0;
  for (Format f : {Format::kDia, Format::kEll, Format::kCsr, Format::kHyb,
                   Format::kCrsd}) {
    gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
    try {
      const gpusim::LaunchResult r =
          kernels::spmv(dev, f, a, x.data(), y.data());
      const double gflops = r.gflops(a.nnz());
      std::printf("%-6s %10.2f %14.2f %12.2f %10llu\n", format_name(f), gflops,
                  double(r.counters.global_load_bytes) / (1 << 20),
                  double(r.counters.global_store_bytes) / (1 << 20),
                  static_cast<unsigned long long>(r.counters.barriers));
      if (gflops > best_gflops) {
        best_gflops = gflops;
        best = f;
      }
    } catch (const Error& e) {
      std::printf("%-6s %10s  (%s)\n", format_name(f), "OOM", e.what());
    }
  }

  // Pseudo time stepping: u <- u + dt * (A u), the SpMV-bound inner loop of
  // an explicit solver. The simulated seconds accumulate per step.
  std::printf("\ntime-stepping 50 iterations with %s:\n", format_name(best));
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  std::vector<double> u(x);
  double simulated_seconds = 0;
  for (int step = 0; step < 50; ++step) {
    const gpusim::LaunchResult r =
        kernels::spmv(dev, best, a, u.data(), y.data());
    simulated_seconds += r.seconds;
    const double dt = 1e-3;
    for (std::size_t i = 0; i < u.size(); ++i) u[i] += dt * y[i];
  }
  std::printf("simulated device time: %.2f ms for 50 SpMV steps "
              "(%.2f GFLOPS sustained)\n",
              simulated_seconds * 1e3,
              2.0 * 50.0 * double(a.nnz()) / simulated_seconds / 1e9);
  return 0;
}
