// crsd_cli — the command-line face of the library for downstream users.
//
//   crsd_cli analyze <matrix>             structure report + spy plot
//   crsd_cli convert <matrix> <out.crsd>  build CRSD and serialize it
//   crsd_cli spmv <matrix> [--reps N]     wall-clock SpMV (interpreted+JIT)
//   crsd_cli tune <matrix>                auto-tune the CRSD configuration
//   crsd_cli kernel <matrix> [--opencl]   print the generated codelet
//
// <matrix> is a Matrix Market file, or `suite:<name>[:scale]` for one of
// the paper's 23 synthetic matrices (e.g. suite:kim1:0.05).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "crsd.hpp"

namespace {

using namespace crsd;

Coo<double> load(const std::string& source) {
  if (source.rfind("suite:", 0) == 0) {
    std::string rest = source.substr(6);
    double scale = 0.05;
    if (const auto colon = rest.find(':'); colon != std::string::npos) {
      scale = std::stod(rest.substr(colon + 1));
      rest = rest.substr(0, colon);
    }
    for (const auto& spec : paper_suite()) {
      if (spec.name == rest) return spec.generate(scale);
    }
    throw Error("unknown suite matrix: " + rest);
  }
  return read_matrix_market_file(source);
}

int cmd_analyze(const Coo<double>& a) {
  std::printf("%s", spy_string(a, 56).c_str());
  const auto s = compute_stats(a);
  std::printf("%d x %d, %llu nnz, %.2f nnz/row, %llu diagonals\n",
              s.num_rows, s.num_cols, (unsigned long long)s.nnz,
              s.avg_nnz_per_row, (unsigned long long)s.num_diagonals());
  std::printf("DIA efficiency %.1f%%, ELL efficiency %.1f%%\n",
              100.0 * s.dia_efficiency(), 100.0 * s.ell_efficiency());
  const auto m = build(a);
  const auto st = m.stats();
  std::printf("CRSD: %d patterns, fill %.1f%%, %d scatter rows, AD share "
              "%.0f%%, %.2f MiB\n",
              st.num_patterns, 100.0 * st.fill_ratio(), st.num_scatter_rows,
              100.0 * st.ad_diag_fraction,
              double(m.footprint_bytes()) / double(1 << 20));
  return 0;
}

int cmd_convert(const Coo<double>& a, const std::string& out) {
  const auto m = build(a);
  std::ofstream os(out, std::ios::binary);
  if (!os.good()) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  write_crsd(os, m);
  std::printf("wrote %s (%d patterns, %d scatter rows)\n", out.c_str(),
              m.num_patterns(), m.num_scatter_rows());
  return 0;
}

int cmd_spmv(const Coo<double>& a, int reps) {
  const auto m = build(a);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  auto gflops = [&](double secs_per_rep) {
    return 2.0 * double(a.nnz()) / secs_per_rep / 1e9;
  };
  const double t_interp =
      time_per_rep([&] { m.spmv(x.data(), y.data()); }, 0.2, reps);
  std::printf("interpreted: %8.1f us/SpMV  (%.2f GFLOPS)\n", t_interp * 1e6,
              gflops(t_interp));
  if (codegen::JitCompiler::compiler_available()) {
    codegen::JitCompiler compiler;
    Timer build;
    const codegen::CrsdJitKernel<double> kernel(m, compiler);
    const double compile_ms = build.millis();
    const double t_jit = time_per_rep(
        [&] { kernel.spmv(m, x.data(), y.data()); }, 0.2, reps);
    std::printf("JIT codelet: %8.1f us/SpMV  (%.2f GFLOPS, compiled in "
                "%.0f ms, %s)\n",
                t_jit * 1e6, gflops(t_jit), compile_ms,
                compiler.cache_hits() > 0 ? "cache hit" : "cache miss");
  }
  return 0;
}

int cmd_tune(const Coo<double>& a) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  const auto result = kernels::autotune_crsd(dev, a);
  std::printf("best configuration (on the simulated Tesla C2050):\n");
  std::printf("  mrows = %d\n", result.best_config.mrows);
  std::printf("  fill_max_gap_segments = %d\n",
              result.best_config.fill_max_gap_segments);
  std::printf("  live_min_fill = %.2f\n", result.best_config.live_min_fill);
  std::printf("  local memory staging = %s\n",
              result.best_local_memory ? "on" : "off");
  std::printf("  (%zu candidates evaluated, best %.1f us per SpMV)\n",
              result.trials.size(), result.best_seconds * 1e6);
  return 0;
}

int cmd_kernel(const Coo<double>& a, bool opencl) {
  const auto m = build(a);
  if (opencl) {
    std::cout << codegen::generate_opencl_kernel_source(m);
  } else {
    std::cout << codegen::generate_cpu_codelet_source(m);
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: crsd_cli <analyze|convert|spmv|tune|kernel> "
               "<matrix.mtx|suite:name[:scale]> [args]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    const Coo<double> a = load(argv[2]);
    if (cmd == "analyze") return cmd_analyze(a);
    if (cmd == "convert") {
      if (argc < 4) return usage();
      return cmd_convert(a, argv[3]);
    }
    if (cmd == "spmv") {
      int reps = 10;
      for (int i = 3; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
      }
      return cmd_spmv(a, reps);
    }
    if (cmd == "tune") return cmd_tune(a);
    if (cmd == "kernel") {
      const bool opencl = argc > 3 && std::strcmp(argv[3], "--opencl") == 0;
      return cmd_kernel(a, opencl);
    }
  } catch (const crsd::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
