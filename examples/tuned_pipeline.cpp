// Production pipeline demo: take a badly-numbered matrix, (1) reorder it
// with RCM so its diagonal structure emerges, (2) auto-tune the CRSD
// configuration on the simulated device, (3) generate + compile the GPU
// codelet at run time and execute it, (4) serialize the built format so the
// next run skips the analysis.
//
//   ./examples/tuned_pipeline
#include <cstdio>
#include <sstream>

#include "crsd.hpp"

int main() {
  using namespace crsd;

  // A banded operator whose unknowns arrived in a scrambled numbering.
  const auto band = dense_band(4096, 4);
  Rng rng(99);
  Permutation shuffle{{}};
  shuffle.perm.resize(4096);
  for (index_t i = 0; i < 4096; ++i) {
    shuffle.perm[static_cast<std::size_t>(i)] = i;
  }
  for (index_t i = 4095; i > 0; --i) {
    std::swap(shuffle.perm[static_cast<std::size_t>(i)],
              shuffle.perm[static_cast<std::size_t>(rng.next_index(0, i))]);
  }
  const auto scrambled = permute_symmetric(band, shuffle);

  std::printf("== 1. RCM reordering ==\n");
  std::printf("bandwidth before: %d\n", matrix_bandwidth(scrambled));
  std::printf("%s", spy_string(scrambled, 40).c_str());
  const Permutation rcm = reverse_cuthill_mckee(scrambled);
  const auto reordered = permute_symmetric(scrambled, rcm);
  std::printf("bandwidth after RCM: %d\n", matrix_bandwidth(reordered));
  std::printf("%s", spy_string(reordered, 40).c_str());

  const auto before = build(scrambled, CrsdConfig{.mrows = 64}).stats();
  const auto naive = build(reordered, CrsdConfig{.mrows = 64}).stats();
  std::printf("CRSD scatter rows: %d before, %d after reordering\n",
              before.num_scatter_rows, naive.num_scatter_rows);

  std::printf("\n== 2. Auto-tuning the CRSD configuration ==\n");
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  const auto tuned = kernels::autotune_crsd(dev, reordered);
  std::printf("best: mrows=%d, gap=%d, min_fill=%.2f, local memory=%s "
              "(%zu candidates, %.1f us per SpMV)\n",
              tuned.best_config.mrows,
              tuned.best_config.fill_max_gap_segments,
              tuned.best_config.live_min_fill,
              tuned.best_local_memory ? "on" : "off", tuned.trials.size(),
              tuned.best_seconds * 1e6);
  const auto m = build(reordered, tuned.best_config);

  std::printf("\n== 3. Runtime-compiled GPU codelet ==\n");
  if (codegen::JitCompiler::compiler_available()) {
    codegen::JitCompiler compiler;
    codegen::GpuCodeletOptions gopts;
    gopts.use_local_memory = tuned.best_local_memory;
    const codegen::CrsdGpuJitKernel<double> kernel(m, compiler, gopts);
    std::vector<double> x(4096, 1.0), y(4096);
    const auto r = kernel.run(dev, m, x.data(), y.data());
    std::printf("compiled codelet: %.2f GFLOPS on the simulated C2050 "
                "(%zu lines of generated source)\n",
                r.gflops(reordered.nnz()),
                static_cast<std::size_t>(std::count(
                    kernel.source().begin(), kernel.source().end(), '\n')));
  } else {
    std::printf("no host compiler available; skipped\n");
  }

  std::printf("\n== 4. Serialize the built format ==\n");
  std::stringstream blob;
  write_crsd(blob, m);
  const auto loaded = read_crsd<double>(blob);
  std::printf("serialized %zu bytes; reloaded matrix has %d patterns, "
              "dia values equal: %s\n",
              blob.str().size(), loaded.num_patterns(),
              loaded.dia_values() == m.dia_values() ? "yes" : "NO");
  return 0;
}
