// Quickstart: build a diagonal sparse matrix, store it in CRSD, run SpMV on
// the CPU (interpreted and JIT codelet) and on the simulated GPU, and print
// what the format did with the structure.
//
//   ./examples/quickstart
#include <cstdio>
#include <vector>

#include "crsd.hpp"

int main() {
  using namespace crsd;

  // 1. A diagonal sparse matrix: a 2D diffusion stencil whose off-grid
  //    diagonals are broken by idle sections, plus a few scatter points.
  Rng rng(2024);
  Coo<double> a = broken_diagonals(
      8192, {{1, 0.9, 2}, {-1, 0.9, 2}, {64, 0.5, 3}, {-64, 0.5, 3}}, rng);
  inject_scatter(a, 20, rng);
  std::printf("matrix: %d x %d, %llu nonzeros\n", a.num_rows(), a.num_cols(),
              static_cast<unsigned long long>(a.nnz()));

  // 2. Store it in CRSD.
  CrsdConfig cfg;
  cfg.mrows = 64;  // one row segment = one GPU work-group (2 wavefronts)
  const CrsdMatrix<double> m = build(a, cfg);
  const CrsdStats st = m.stats();
  std::printf("CRSD: %d diagonal pattern(s) over %d row segments\n",
              st.num_patterns, st.num_segments);
  std::printf("      fill ratio %.1f%%, %d scatter row(s), footprint %.1f KiB\n",
              100.0 * st.fill_ratio(), st.num_scatter_rows,
              double(m.footprint_bytes()) / 1024.0);

  // 3. SpMV on the CPU (interpreted kernel).
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  m.spmv(x.data(), y.data());
  std::printf("interpreted SpMV done: y[0] = %.3f\n", y[0]);

  // 4. Runtime code generation: compile this structure's codelet and rerun.
  if (codegen::JitCompiler::compiler_available()) {
    codegen::JitCompiler compiler;
    const codegen::CrsdJitKernel<double> kernel(m, compiler);
    std::vector<double> y_jit(y.size());
    kernel.spmv(m, x.data(), y_jit.data());
    std::printf("JIT codelet SpMV done (%zu source lines), matches: %s\n",
                static_cast<std::size_t>(
                    std::count(kernel.source().begin(), kernel.source().end(),
                               '\n')),
                y_jit == y ? "yes" : "NO");
  } else {
    std::printf("no C++ compiler found; skipping the JIT demonstration\n");
  }

  // 5. The same SpMV on the simulated Tesla C2050.
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  std::vector<double> y_gpu(y.size());
  const gpusim::LaunchResult r =
      kernels::gpu_spmv_crsd(dev, m, x.data(), y_gpu.data());
  std::printf("simulated GPU SpMV: %.2f GFLOPS (%.1f us, %llu transactions)\n",
              r.gflops(a.nnz()), r.seconds * 1e6,
              static_cast<unsigned long long>(
                  r.counters.global_load_transactions));
  std::printf("GPU result matches CPU: %s\n", y_gpu == y ? "yes" : "NO");
  return 0;
}
