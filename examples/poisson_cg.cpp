// PDE application: solve a 2D Poisson problem (5-point FDM discretization,
// the matrix family the paper's introduction motivates) with conjugate
// gradient, comparing the SpMV backend: CSR, CRSD interpreted, and the CRSD
// JIT codelet. Prints iterations, residuals and per-backend solve time.
//
//   ./examples/poisson_cg [grid_n]        (default 96 -> 9216 unknowns)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "crsd.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  const index_t grid = argc > 1 ? std::atoi(argv[1]) : 96;
  const auto a = stencil_5pt_2d(grid, grid);
  const index_t n = a.num_rows();
  std::printf("Poisson %dx%d grid: %d unknowns, %llu nonzeros\n", grid, grid,
              n, static_cast<unsigned long long>(a.nnz()));

  // Manufactured right-hand side: b = A * x_star with a smooth x_star.
  std::vector<double> x_star(static_cast<std::size_t>(n));
  for (index_t j = 0; j < grid; ++j) {
    for (index_t i = 0; i < grid; ++i) {
      x_star[static_cast<std::size_t>(j * grid + i)] =
          double(i) / grid + 0.5 * double(j) / grid;
    }
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  a.spmv_reference(x_star.data(), b.data());

  solver::SolveOptions opts;
  opts.max_iterations = 5000;
  opts.tolerance = 1e-10;

  auto report = [&](const char* name, const solver::ApplyFn<double>& apply) {
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    Timer t;
    const solver::SolveResult r =
        solver::conjugate_gradient<double>(n, apply, b.data(), x.data(), opts);
    double max_err = 0;
    for (index_t i = 0; i < n; ++i) {
      max_err = std::max(max_err,
                         std::abs(x[static_cast<std::size_t>(i)] -
                                  x_star[static_cast<std::size_t>(i)]));
    }
    std::printf("%-18s %s in %4d iterations, residual %.2e, max error "
                "%.2e, %.1f ms\n",
                name, r.converged ? "converged" : "NOT converged",
                r.iterations, r.residual_norm, max_err, t.millis());
  };

  const auto csr = CsrMatrix<double>::from_coo(a);
  report("CSR", [&](const double* in, double* out) { csr.spmv(in, out); });

  const auto crsd_m = build(a, CrsdConfig{.mrows = 64});
  const CrsdStats st = crsd_m.stats();
  std::printf("CRSD build: %d patterns, fill %.1f%%, footprint %.0f KiB (CSR "
              "%.0f KiB)\n",
              st.num_patterns, 100.0 * st.fill_ratio(),
              double(crsd_m.footprint_bytes()) / 1024.0,
              double(csr.footprint_bytes()) / 1024.0);
  report("CRSD interpreted",
         [&](const double* in, double* out) { crsd_m.spmv(in, out); });

  if (codegen::JitCompiler::compiler_available()) {
    codegen::JitCompiler compiler;
    Timer t;
    const codegen::CrsdJitKernel<double> kernel(crsd_m, compiler);
    std::printf("JIT codelet compiled in %.0f ms (cache %s)\n", t.millis(),
                compiler.cache_hits() > 0 ? "hit" : "miss");
    report("CRSD JIT codelet", [&](const double* in, double* out) {
      kernel.spmv(crsd_m, in, out);
    });
  }
  return 0;
}
