// Minimal tour of the multi-tenant serving engine (src/serve): register
// matrices once (deduplicated by structure + values + storage mode),
// submit concurrent SpMV requests from several tenants, and let one
// drain() cycle coalesce them into register-blocked SpMM batches on the
// task-graph runtime. Prints the cycle's dispatch stats, the batch size
// each request was served in, and the admission-control behaviour at a
// deliberately tiny queue depth.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "matrix/generators.hpp"
#include "serve/serve.hpp"

using namespace crsd;

namespace {

std::vector<double> make_x(index_t n, int seed) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        1.0 + 0.001 * double((i * 31 + seed * 17) % 97);
  }
  return x;
}

}  // namespace

int main() {
  ThreadPool pool(4);
  serve::ServeEngine eng(pool, serve::ServeOptions{});

  // Two tenants share the band matrix (one CRSD build between them —
  // the registry dedups on registration), a third brings its own.
  Rng rng(3);
  Coo<double> band = dense_band(1024, 8);
  Coo<double> scattered = dense_band(768, 4);
  inject_scatter(scattered, 120, rng);

  const auto a = eng.register_matrix(band);
  const auto a2 = eng.register_matrix(band);  // dedup hit
  const auto b = eng.register_matrix(scattered);
  std::printf("registry: %zu entries (band re-registration dedup_hit=%s)\n",
              eng.registry_size(), a2.dedup_hit ? "true" : "false");
  std::printf("band:      id %d, hash %016llx, batchable %s\n", a.id,
              static_cast<unsigned long long>(a.structure_hash),
              a.batchable ? "yes" : "no");
  std::printf("scattered: id %d, hash %016llx, batchable %s\n\n", b.id,
              static_cast<unsigned long long>(b.structure_hash),
              b.batchable ? "yes" : "no");

  // Eight concurrent requests against the band, three against the other:
  // one drain cycle turns them into one k=8 SpMM batch, one k=3 batch.
  std::vector<serve::RequestHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(eng.submit(a.id, "tenant-" + std::to_string(i % 2),
                                 make_x(band.num_cols(), i)));
  }
  for (int i = 0; i < 3; ++i) {
    handles.push_back(
        eng.submit(b.id, "tenant-c", make_x(scattered.num_cols(), 100 + i)));
  }

  const auto st = eng.drain();
  std::printf("drain: %lld requests -> %lld batches + %lld singles "
              "(%lld coalesced), virtual makespan %.3e s\n",
              static_cast<long long>(st.requests),
              static_cast<long long>(st.batches),
              static_cast<long long>(st.singles),
              static_cast<long long>(st.coalesced_requests),
              st.makespan_seconds);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto& h = handles[i];
    double sum = 0.0;
    for (double v : h.result()) sum += v;
    std::printf("  request %2zu: served in k=%lld batch, finish %.3e s, "
                "sum(y) = %.6f\n",
                i, static_cast<long long>(h.served_batch_k()),
                h.virtual_finish_seconds(), sum);
  }

  // Admission control: at queue depth 4, the fifth concurrent request is
  // shed immediately with a diagnostic instead of queueing unboundedly.
  serve::ServeOptions tight;
  tight.max_queue_depth = 4;
  serve::ServeEngine small(pool, tight);
  const auto c = small.register_matrix(band);
  std::vector<serve::RequestHandle> burst;
  for (int i = 0; i < 6; ++i) {
    burst.push_back(
        small.submit(c.id, "bursty", make_x(band.num_cols(), i)));
  }
  int rejected = 0;
  for (const auto& h : burst) {
    if (h.status() == serve::RequestStatus::kRejected) ++rejected;
  }
  std::printf("\nadmission: 6 submits at depth 4 -> %d rejected (%s)\n",
              rejected,
              burst.back().diagnostic().message.c_str());
  small.drain();
  return 0;
}
