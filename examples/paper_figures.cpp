// Reproduces the paper's worked example end to end: the Fig. 2 matrix, its
// diagonal patterns (§II-B), the CRSD arrays of Fig. 4, the inferred
// per-pattern information of Table III, and the generated SpMV kernel of
// Fig. 6 (OpenCL text) plus our compilable CPU codelet.
//
//   ./examples/paper_figures
#include <cstdio>
#include <iostream>

#include "crsd.hpp"

namespace {

// The 6x9 matrix of Fig. 2: rows 0-1 carry diagonals {0,2,3,5,7}; rows 2-5
// carry {-2,-1,+2} with a hole at (4,3) (filled, per §II-C); (5,5) is the
// scatter point v55.
crsd::Coo<double> fig2_matrix() {
  using crsd::index_t;
  crsd::Coo<double> a(6, 9);
  auto v = [](index_t r, index_t c) { return 10.0 * r + c + 1.0; };
  for (index_t r : {0, 1}) {
    for (crsd::diag_offset_t off : {0, 2, 3, 5, 7}) {
      a.add(r, r + off, v(r, r + off));
    }
  }
  for (index_t r : {2, 3, 4, 5}) {
    a.add(r, r - 2, v(r, r - 2));
    if (r != 4) a.add(r, r - 1, v(r, r - 1));
    a.add(r, r + 2, v(r, r + 2));
  }
  a.add(5, 5, v(5, 5));
  a.canonicalize();
  return a;
}

}  // namespace

int main() {
  using namespace crsd;

  std::printf("== Fig. 1: a real diagonal sparse matrix (astrophysics core "
              "convection) ==\n");
  std::printf("Diagonals broken by idle sections; scatter points off the "
              "diagonal structure.\n");
  Rng fig1_rng(2011);
  const auto fig1 = astro_convection(16, 16, 10, true, fig1_rng);
  std::printf("%s\n", spy_string(fig1, 56).c_str());

  const auto a = fig2_matrix();

  CrsdConfig cfg;
  cfg.mrows = 2;  // the paper's example uses mrows = 2
  cfg.zero_scatter_rows_in_dia = false;  // Fig. 4 keeps the values in place
  const auto m = build(a, cfg);

  std::printf("== Fig. 4: CRSD storage of the Fig. 2 matrix (mrows = 2) ==\n");
  dump_crsd(std::cout, m);

  std::printf("\n== Table III: information inferred from CRSD ==\n");
  std::printf("%-10s", "Token");
  for (index_t p = 0; p < m.num_patterns(); ++p) std::printf("  p = %d", p);
  std::printf("\n");
  auto row = [&](const char* token, auto getter) {
    std::printf("%-10s", token);
    for (index_t p = 0; p < m.num_patterns(); ++p) {
      std::printf("  %5lld", static_cast<long long>(getter(p)));
    }
    std::printf("\n");
  };
  row("NRS_p", [&](index_t p) {
    return m.patterns()[static_cast<std::size_t>(p)].num_segments;
  });
  row("NNzRS_p", [&](index_t p) {
    return static_cast<long long>(
        m.patterns()[static_cast<std::size_t>(p)].slots_per_segment(m.mrows()));
  });
  row("SR_p", [&](index_t p) {
    return m.patterns()[static_cast<std::size_t>(p)].start_row;
  });
  row("NDias_p", [&](index_t p) {
    return m.patterns()[static_cast<std::size_t>(p)].num_diagonals();
  });

  std::printf("\n== Fig. 6: generated OpenCL SpMV kernel ==\n");
  std::cout << codegen::generate_opencl_kernel_source(m);

  std::printf("\n== Compilable CPU codelet (same structure, C ABI) ==\n");
  std::cout << codegen::generate_cpu_codelet_source(m);
  return 0;
}
