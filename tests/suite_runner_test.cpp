// Tests for the figure-generation pipeline itself (bench/suite_runner):
// option parsing, counter extrapolation, OOM handling, and speedup
// summaries — the machinery every reproduced figure flows through.
#include <gtest/gtest.h>

#include "cpu_suite.hpp"
#include "suite_runner.hpp"

namespace crsd::bench {
namespace {

TEST(SuiteOptions, ParsesFlags) {
  const char* argv[] = {"bench",  "--scale",           "0.1",
                        "--matrix", "7",               "--mrows",
                        "128",    "--no-local-memory", "--interpreted"};
  const auto opts =
      SuiteOptions::parse(static_cast<int>(std::size(argv)),
                          const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(opts.scale, 0.1);
  ASSERT_TRUE(opts.only_matrix.has_value());
  EXPECT_EQ(*opts.only_matrix, 7);
  EXPECT_EQ(opts.mrows, 128);
  EXPECT_FALSE(opts.use_local_memory);
  EXPECT_FALSE(opts.jit_codelet_model);
}

TEST(SuiteOptions, RejectsBadScale) {
  const char* argv[] = {"bench", "--scale", "1.5"};
  EXPECT_THROW(SuiteOptions::parse(3, const_cast<char**>(argv)), Error);
}

TEST(ScaleCounters, LinearInFactor) {
  gpusim::Counters c;
  c.flops = 100;
  c.alu_slots = 10;
  c.global_load_transactions = 7;
  c.global_load_bytes = 896;
  c.barriers = 3;
  c.wavefronts = 5;
  const auto doubled = scale_counters(c, 2.0);
  EXPECT_EQ(doubled.flops, 200u);
  EXPECT_EQ(doubled.global_load_bytes, 1792u);
  EXPECT_EQ(doubled.barriers, 6u);
  EXPECT_EQ(doubled.wavefronts, 10u);
  const auto same = scale_counters(c, 1.0);
  EXPECT_EQ(same.flops, c.flops);
}

TEST(SuiteRunner, SingleMatrixRowIsComplete) {
  SuiteOptions opts;
  opts.scale = 0.02;
  opts.only_matrix = 9;  // kim1
  const auto rows = run_gpu_suite<double>(opts);
  ASSERT_EQ(rows.size(), 1u);
  const SuiteRow& row = rows[0];
  EXPECT_EQ(row.id, 9);
  EXPECT_EQ(row.name, "kim1");
  ASSERT_EQ(row.cells.size(), figure_formats().size());
  for (Format f : figure_formats()) {
    const Cell& cell = row.cell(f);
    EXPECT_FALSE(cell.oom) << format_name(f);
    EXPECT_GT(cell.gflops, 0.0) << format_name(f);
    EXPECT_GT(cell.seconds, 0.0) << format_name(f);
  }
  // The kim structure: CRSD beats ELL, speedup accessor agrees.
  EXPECT_NEAR(row.crsd_speedup_over(Format::kEll),
              row.cell(Format::kEll).seconds /
                  row.cell(Format::kCrsd).seconds,
              1e-12);
}

TEST(SuiteRunner, OomCellsAreMarkedAndExcluded) {
  SuiteOptions opts;
  opts.scale = 0.02;
  opts.only_matrix = 11;  // af_1_k101: DIA OOM at full size in double
  const auto rows = run_gpu_suite<double>(opts);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].cell(Format::kDia).oom);
  EXPECT_EQ(rows[0].crsd_speedup_over(Format::kDia), 0.0);
  const auto summary = summarize_speedup(rows, Format::kDia);
  EXPECT_EQ(summary.max, 0.0);  // no non-OOM cells contribute
  // Single precision fits.
  const auto rows_sgl = run_gpu_suite<float>(opts);
  EXPECT_FALSE(rows_sgl[0].cell(Format::kDia).oom);
}

TEST(CpuSuite, RowTimesPositiveAndOrdered) {
  SuiteOptions opts;
  opts.scale = 0.02;
  opts.only_matrix = 3;  // s3dkt3m2
  const auto rows = run_cpu_comparison<double>(opts);
  ASSERT_EQ(rows.size(), 1u);
  const CpuRow& r = rows[0];
  EXPECT_GT(r.t_crsd_gpu, 0.0);
  // More threads never slower in the roofline model.
  EXPECT_GE(r.t_csr_serial, r.t_csr_threads);
  // DIA on a 389-diagonal matrix is far slower than CSR on CPU.
  EXPECT_GT(r.t_dia_serial, 5.0 * r.t_csr_serial);
  EXPECT_GT(r.speedup_csr_serial(), r.speedup_csr_threads());
}

}  // namespace
}  // namespace crsd::bench
