// Tests for restarted GMRES over the library's SpMV backends.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "formats/csr.hpp"
#include "matrix/generators.hpp"
#include "solver/solvers.hpp"

namespace crsd::solver {
namespace {

TEST(Gmres, SolvesNonsymmetricSystem) {
  Rng rng(4);
  auto a = broken_diagonals(300, {{2, 0.9, 2}, {-5, 0.7, 2}, {1, 1.0, 1}}, rng);
  make_diagonally_dominant(a, 1.0);
  const auto m = CsrMatrix<double>::from_coo(a);
  const index_t n = a.num_rows();
  std::vector<double> x_star(static_cast<std::size_t>(n));
  for (auto& v : x_star) v = rng.next_double(-1, 1);
  std::vector<double> b(static_cast<std::size_t>(n));
  a.spmv_reference(x_star.data(), b.data());
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  SolveOptions opts;
  opts.max_iterations = 1000;
  opts.tolerance = 1e-12;
  const SolveResult r = gmres<double>(
      n, [&](const double* in, double* out) { m.spmv(in, out); }, b.data(),
      x.data(), 30, opts);
  EXPECT_TRUE(r.converged) << r.iterations << " " << r.residual_norm;
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_star[static_cast<std::size_t>(i)], 1e-7);
  }
}

TEST(Gmres, MatchesCgOnSpdSystem) {
  const auto a = stencil_5pt_2d(16, 16);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  auto apply = [&](const double* in, double* out) { m.spmv(in, out); };
  const index_t n = a.num_rows();
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> x_cg(b.size(), 0.0), x_gm(b.size(), 0.0);
  SolveOptions opts;
  opts.max_iterations = 2000;
  opts.tolerance = 1e-12;
  const SolveResult rc =
      conjugate_gradient<double>(n, apply, b.data(), x_cg.data(), opts);
  const SolveResult rg =
      gmres<double>(n, apply, b.data(), x_gm.data(), 40, opts);
  ASSERT_TRUE(rc.converged);
  ASSERT_TRUE(rg.converged);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(x_gm[i], x_cg[i], 1e-7);
  }
}

TEST(Gmres, SmallRestartStillConverges) {
  Rng rng(5);
  auto a = broken_diagonals(150, {{3, 0.8, 1}, {-1, 1.0, 1}}, rng);
  make_diagonally_dominant(a, 2.0);
  const auto m = CsrMatrix<double>::from_coo(a);
  const index_t n = a.num_rows();
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> x(b.size(), 0.0);
  SolveOptions opts;
  opts.max_iterations = 2000;
  opts.tolerance = 1e-10;
  const SolveResult r = gmres<double>(
      n, [&](const double* in, double* out) { m.spmv(in, out); }, b.data(),
      x.data(), 5, opts);
  EXPECT_TRUE(r.converged);
  // Verify by residual.
  std::vector<double> ax(b.size());
  a.spmv_reference(x.data(), ax.data());
  double res = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    res += (b[i] - ax[i]) * (b[i] - ax[i]);
  }
  EXPECT_LT(std::sqrt(res), 1e-8);
}

TEST(Gmres, ZeroRhsConvergesImmediately) {
  Coo<double> a(10, 10);
  for (index_t i = 0; i < 10; ++i) a.add(i, i, 2.0);
  a.canonicalize();
  std::vector<double> b(10, 0.0), x(10, 0.0);
  const SolveResult r = gmres<double>(
      10, [&](const double* in, double* out) { a.spmv_reference(in, out); },
      b.data(), x.data());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Gmres, ExactConvergenceWithinOneCycleForTinySystem) {
  // 4x4 system, restart 4: GMRES is exact after at most n steps.
  Coo<double> a(4, 4);
  a.add(0, 0, 4.0); a.add(0, 1, 1.0);
  a.add(1, 1, 3.0); a.add(1, 2, -1.0);
  a.add(2, 2, 5.0); a.add(2, 0, 2.0);
  a.add(3, 3, 2.0);
  a.canonicalize();
  std::vector<double> b = {1, 2, 3, 4}, x(4, 0.0);
  SolveOptions opts;
  opts.tolerance = 1e-13;
  const SolveResult r = gmres<double>(
      4, [&](const double* in, double* out) { a.spmv_reference(in, out); },
      b.data(), x.data(), 4, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 4);
}

}  // namespace
}  // namespace crsd::solver
