// Unit tests for src/common: error macros, RNG determinism, thread pool,
// hashing, tables.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace crsd {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(CRSD_CHECK(1 + 1 == 2));
  try {
    CRSD_CHECK_MSG(false, "custom detail " << 42);
    FAIL() << "expected crsd::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool saw_difference = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) saw_difference = true;
  }
  EXPECT_TRUE(saw_difference);
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const index_t v = rng.next_index(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
    const double d = rng.next_double(0.25, 0.75);
    EXPECT_GE(d, 0.25);
    EXPECT_LT(d, 0.75);
  }
}

TEST(Rng, DoubleIsRoughlyUniform) {
  Rng rng(99);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](index_t b, index_t e, int) {
    for (index_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int count = 0;
  pool.parallel_for(0, 10, [&](index_t b, index_t e, int tid) {
    EXPECT_EQ(tid, 0);
    count += e - b;
  });
  EXPECT_EQ(count, 10);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](index_t, index_t, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](index_t b, index_t, int) {
                          if (b == 0) throw Error("boom");
                        }),
      Error);
  // Pool must stay usable afterwards.
  std::atomic<int> total{0};
  pool.parallel_for(0, 10,
                    [&](index_t b, index_t e, int) { total += e - b; });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int iter = 0; iter < 50; ++iter) {
    std::atomic<long long> sum{0};
    pool.parallel_for(0, 1000, [&](index_t b, index_t e, int) {
      long long local = 0;
      for (index_t i = b; i < e; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
  }
}

TEST(Hash, StableAndCollisionFreeOnSmallSet) {
  EXPECT_EQ(fnv1a64("hello"), fnv1a64("hello"));
  EXPECT_NE(fnv1a64("hello"), fnv1a64("hellp"));
  EXPECT_EQ(fnv1a64_hex("x").size(), 16u);
  EXPECT_NE(fnv1a64_hex("a"), fnv1a64_hex("b"));
}

TEST(Table, TextAndCsvRendering) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::fmt(1.5, 1)});
  t.add_row({"with,comma", Table::fmt(2LL)});
  std::ostringstream text;
  t.print_text(text);
  EXPECT_NE(text.str().find("alpha"), std::string::npos);
  EXPECT_NE(text.str().find("1.5"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("\"with,comma\""), std::string::npos);
}

TEST(Table, RowsPaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly-one,,\n");
}

TEST(Timer, MeasuresForwardTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GT(t.micros(), 0.0);
}

}  // namespace
}  // namespace crsd
