// Unit tests for src/common: error macros, RNG determinism, thread pool,
// hashing, tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace crsd {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(CRSD_CHECK(1 + 1 == 2));
  try {
    CRSD_CHECK_MSG(false, "custom detail " << 42);
    FAIL() << "expected crsd::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool saw_difference = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) saw_difference = true;
  }
  EXPECT_TRUE(saw_difference);
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const index_t v = rng.next_index(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
    const double d = rng.next_double(0.25, 0.75);
    EXPECT_GE(d, 0.25);
    EXPECT_LT(d, 0.75);
  }
}

TEST(Rng, DoubleIsRoughlyUniform) {
  Rng rng(99);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](index_t b, index_t e, int) {
    for (index_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int count = 0;
  pool.parallel_for(0, 10, [&](index_t b, index_t e, int tid) {
    EXPECT_EQ(tid, 0);
    count += e - b;
  });
  EXPECT_EQ(count, 10);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](index_t, index_t, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](index_t b, index_t, int) {
                          if (b == 0) throw Error("boom");
                        }),
      Error);
  // Pool must stay usable afterwards.
  std::atomic<int> total{0};
  pool.parallel_for(0, 10,
                    [&](index_t b, index_t e, int) { total += e - b; });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int iter = 0; iter < 50; ++iter) {
    std::atomic<long long> sum{0};
    pool.parallel_for(0, 1000, [&](index_t b, index_t e, int) {
      long long local = 0;
      for (index_t i = b; i < e; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
  }
}

TEST(ThreadPool, SubmitUrgentRunsAheadOfPendingChunks) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool urgent_queued = false;
  std::atomic<int> parked{0};
  std::vector<std::string> order;  // guarded by mu

  constexpr index_t kChunks = 12;
  std::thread runner([&] {
    pool.parallel_for_chunked(0, kChunks, 1, [&](index_t b, index_t, int) {
      std::unique_lock<std::mutex> lock(mu);
      if (b < 2) {
        // Both claiming threads park on the first two chunks until the
        // urgent task is queued, so the remaining ten chunks form a
        // pending train behind it.
        parked.fetch_add(1);
        cv.wait(lock, [&] { return urgent_queued; });
      }
      order.push_back("chunk" + std::to_string(b));
    });
  });
  while (parked.load() < 2) std::this_thread::yield();

  pool.submit_urgent([&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back("urgent");
  });
  {
    std::lock_guard<std::mutex> lock(mu);
    urgent_queued = true;
  }
  cv.notify_all();
  runner.join();
  pool.drain_urgent();

  // The two parked chunks record first; the urgent task must be claimed
  // before the ten queued chunks (one racing chunk record at most).
  const auto it = std::find(order.begin(), order.end(), "urgent");
  ASSERT_NE(it, order.end());
  EXPECT_LE(it - order.begin(), 3);
  EXPECT_EQ(order.size(), static_cast<std::size_t>(kChunks) + 1);
}

TEST(ThreadPool, SubmitUrgentRunsInlineOnSingleThreadPool) {
  ThreadPool pool(1);
  int ran_on = -1;
  const auto me = std::this_thread::get_id();
  std::thread::id urgent_thread;
  pool.submit_urgent([&] {
    ran_on = 1;
    urgent_thread = std::this_thread::get_id();
  });
  // No workers exist: the task already ran, inline on the caller.
  EXPECT_EQ(ran_on, 1);
  EXPECT_EQ(urgent_thread, me);
  pool.drain_urgent();  // no-op, must not deadlock
}

TEST(ThreadPool, UrgentExceptionDoesNotPoisonParallelFor) {
  ThreadPool pool(2);
  pool.submit_urgent([] { throw std::runtime_error("urgent boom"); });
  pool.drain_urgent();
  // The swallowed urgent failure must not surface as a parallel_for error.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](index_t b, index_t e, int) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, UrgentTasksKeepFifoOrder) {
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.submit_urgent([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  pool.drain_urgent();
  ASSERT_EQ(order.size(), 8u);
  // A single worker claims from the front; with two workers the claim
  // order is still FIFO even if completion interleaves, so each element
  // can sit at most one slot from its submission position.
  for (int i = 0; i < 8; ++i) {
    EXPECT_LE(std::abs(order[static_cast<std::size_t>(i)] - i), 1);
  }
}

TEST(Hash, StableAndCollisionFreeOnSmallSet) {
  EXPECT_EQ(fnv1a64("hello"), fnv1a64("hello"));
  EXPECT_NE(fnv1a64("hello"), fnv1a64("hellp"));
  EXPECT_EQ(fnv1a64_hex("x").size(), 16u);
  EXPECT_NE(fnv1a64_hex("a"), fnv1a64_hex("b"));
}

TEST(Table, TextAndCsvRendering) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::fmt(1.5, 1)});
  t.add_row({"with,comma", Table::fmt(2LL)});
  std::ostringstream text;
  t.print_text(text);
  EXPECT_NE(text.str().find("alpha"), std::string::npos);
  EXPECT_NE(text.str().find("1.5"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("\"with,comma\""), std::string::npos);
}

TEST(Table, RowsPaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly-one,,\n");
}

TEST(Timer, MeasuresForwardTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GT(t.micros(), 0.0);
}

}  // namespace
}  // namespace crsd
