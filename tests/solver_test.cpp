// Tests for the iterative solvers over different SpMV backends (CSR, CRSD
// interpreted, CRSD JIT codelet).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <unistd.h>

#include "codegen/crsd_jit_kernel.hpp"
#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "formats/csr.hpp"
#include "matrix/generators.hpp"
#include "solver/solvers.hpp"

namespace crsd::solver {
namespace {

/// Manufactured solution: pick x*, compute b = A x*, solve, compare.
template <typename Apply>
void check_cg_recovers(const Coo<double>& a, Apply&& apply, double tol) {
  const index_t n = a.num_rows();
  Rng rng(1);
  std::vector<double> x_star(static_cast<std::size_t>(n));
  for (auto& v : x_star) v = rng.next_double(-1, 1);
  std::vector<double> b(static_cast<std::size_t>(n));
  a.spmv_reference(x_star.data(), b.data());

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  SolveOptions opts;
  opts.max_iterations = 2000;
  opts.tolerance = 1e-12;
  const SolveResult r = conjugate_gradient<double>(n, apply, b.data(),
                                                   x.data(), opts);
  EXPECT_TRUE(r.converged) << "iters=" << r.iterations
                           << " res=" << r.residual_norm;
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_star[static_cast<std::size_t>(i)], tol)
        << i;
  }
}

TEST(ConjugateGradient, SolvesPoissonWithCsrBackend) {
  const auto a = stencil_5pt_2d(24, 24);
  const auto m = CsrMatrix<double>::from_coo(a);
  check_cg_recovers(a, [&](const double* x, double* y) { m.spmv(x, y); },
                    1e-7);
}

TEST(ConjugateGradient, SolvesPoissonWithCrsdBackend) {
  const auto a = stencil_5pt_2d(24, 24);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  check_cg_recovers(a, [&](const double* x, double* y) { m.spmv(x, y); },
                    1e-7);
}

TEST(ConjugateGradient, SolvesWithJitCodeletBackend) {
  const auto a = stencil_5pt_2d(20, 20);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  codegen::JitCompiler::Options jopts;
  jopts.cache_dir = (std::filesystem::temp_directory_path() /
                     ("crsd-solver-cache-" + std::to_string(::getpid())))
                        .string();
  codegen::JitCompiler compiler(jopts);
  const codegen::CrsdJitKernel<double> kernel(m, compiler);
  check_cg_recovers(
      a, [&](const double* x, double* y) { kernel.spmv(m, x, y); }, 1e-7);
}

TEST(ConjugateGradient, JacobiPreconditionerReducesIterations) {
  // Badly scaled SPD system: D^(1/2) A D^(1/2) with wild diagonal.
  const auto base = stencil_5pt_2d(16, 16);
  const index_t n = base.num_rows();
  Rng rng(2);
  std::vector<double> scale(static_cast<std::size_t>(n));
  for (auto& s : scale) s = std::pow(10.0, rng.next_double(-2, 2));
  Coo<double> a(n, n);
  for (size64_t k = 0; k < base.nnz(); ++k) {
    const index_t r = base.row_indices()[k], c = base.col_indices()[k];
    a.add(r, c,
          base.values()[k] * scale[static_cast<std::size_t>(r)] *
              scale[static_cast<std::size_t>(c)]);
  }
  a.canonicalize();
  const auto m = CsrMatrix<double>::from_coo(a);
  auto apply = [&](const double* x, double* y) { m.spmv(x, y); };

  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> x1(static_cast<std::size_t>(n), 0.0), x2 = x1;
  SolveOptions opts;
  opts.max_iterations = 5000;
  opts.tolerance = 1e-10;
  const SolveResult plain =
      conjugate_gradient<double>(n, apply, b.data(), x1.data(), opts);
  const SolveResult pre = conjugate_gradient<double>(
      n, apply, b.data(), x2.data(), opts, jacobi_preconditioner(a));
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
}

TEST(ConjugateGradient, RejectsNonSpd) {
  // Indefinite matrix: CG's p'Ap check must fire.
  Coo<double> a(2, 2);
  a.add(0, 0, 1.0);
  a.add(1, 1, -1.0);
  a.canonicalize();
  const auto m = CsrMatrix<double>::from_coo(a);
  std::vector<double> b = {1.0, 1.0}, x = {0.0, 0.0};
  EXPECT_THROW(conjugate_gradient<double>(
                   2, [&](const double* in, double* out) { m.spmv(in, out); },
                   b.data(), x.data()),
               Error);
}

TEST(Bicgstab, SolvesNonsymmetricSystem) {
  Rng rng(3);
  auto a = broken_diagonals(400, {{3, 0.8, 2}, {-7, 0.6, 3}, {1, 1.0, 1}}, rng);
  make_diagonally_dominant(a, 1.0);
  const auto m = CsrMatrix<double>::from_coo(a);
  const index_t n = a.num_rows();
  std::vector<double> x_star(static_cast<std::size_t>(n));
  for (auto& v : x_star) v = rng.next_double(-1, 1);
  std::vector<double> b(static_cast<std::size_t>(n));
  a.spmv_reference(x_star.data(), b.data());
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  SolveOptions opts;
  opts.max_iterations = 2000;
  opts.tolerance = 1e-12;
  const SolveResult r = bicgstab<double>(
      n, [&](const double* in, double* out) { m.spmv(in, out); }, b.data(),
      x.data(), opts);
  EXPECT_TRUE(r.converged) << r.iterations << " " << r.residual_norm;
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_star[static_cast<std::size_t>(i)], 1e-6);
  }
}

TEST(Bicgstab, ConvergedOnFirstIterationForIdentity) {
  Coo<double> a(8, 8);
  for (index_t i = 0; i < 8; ++i) a.add(i, i, 1.0);
  a.canonicalize();
  std::vector<double> b(8, 3.0), x(8, 0.0);
  const SolveResult r = bicgstab<double>(
      8, [&](const double* in, double* out) { a.spmv_reference(in, out); },
      b.data(), x.data());
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
  for (double v : x) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(SolveOptions, MaxIterationsRespected) {
  const auto a = stencil_5pt_2d(30, 30);
  const auto m = CsrMatrix<double>::from_coo(a);
  std::vector<double> b(static_cast<std::size_t>(a.num_rows()), 1.0);
  std::vector<double> x(b.size(), 0.0);
  SolveOptions opts;
  opts.max_iterations = 3;
  opts.tolerance = 1e-30;
  const SolveResult r = conjugate_gradient<double>(
      a.num_rows(), [&](const double* in, double* out) { m.spmv(in, out); },
      b.data(), x.data(), opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
}

}  // namespace
}  // namespace crsd::solver
