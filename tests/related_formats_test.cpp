// Tests for the related-work baseline formats (§V of the paper): BCSR
// register blocking and delta-compressed CSR, plus the spy-plot inspector.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "formats/bcsr.hpp"
#include "formats/csr.hpp"
#include "formats/dcsr.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"
#include "matrix/spy.hpp"

namespace crsd {
namespace {

std::vector<double> random_vector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  return x;
}

template <typename M>
void expect_spmv_matches(const M& m, const Coo<double>& ref) {
  const auto x = random_vector(ref.num_cols(), 17);
  std::vector<double> want(static_cast<std::size_t>(ref.num_rows()));
  std::vector<double> got(want.size(), -3.0);
  ref.spmv_reference(x.data(), want.data());
  m.spmv(x.data(), got.data());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-12) << "row " << i;
  }
}

// Block-structured FEM-like matrix: dense 3x3 blocks on a block-tridiagonal
// layout (the SPARSITY/OSKI motivating structure).
Coo<double> block_tridiagonal(index_t nb, index_t bs) {
  Rng rng(23);
  Coo<double> a(nb * bs, nb * bs);
  for (index_t i = 0; i < nb; ++i) {
    for (index_t j = std::max<index_t>(0, i - 1);
         j <= std::min<index_t>(nb - 1, i + 1); ++j) {
      for (index_t r = 0; r < bs; ++r) {
        for (index_t c = 0; c < bs; ++c) {
          a.add(i * bs + r, j * bs + c, rng.next_double(0.1, 1.0));
        }
      }
    }
  }
  a.canonicalize();
  return a;
}

TEST(Bcsr, SpmvMatchesAcrossBlockShapes) {
  Rng rng(31);
  const auto a = astro_convection(8, 8, 5, true, rng);
  for (index_t br : {1, 2, 3, 4}) {
    for (index_t bc : {1, 2, 5}) {
      expect_spmv_matches(BcsrMatrix<double>::from_coo(a, br, bc), a);
    }
  }
}

TEST(Bcsr, ParallelMatchesSerial) {
  const auto a = block_tridiagonal(40, 3);
  const auto m = BcsrMatrix<double>::from_coo(a, 3, 3);
  const auto x = random_vector(a.num_cols(), 5);
  std::vector<double> serial(static_cast<std::size_t>(a.num_rows()));
  std::vector<double> parallel(serial.size(), -1);
  m.spmv(x.data(), serial.data());
  ThreadPool pool(4);
  m.spmv_parallel(pool, x.data(), parallel.data());
  EXPECT_EQ(serial, parallel);
}

TEST(Bcsr, AlignedBlocksHaveNoFillIn) {
  const auto a = block_tridiagonal(20, 3);
  const auto m = BcsrMatrix<double>::from_coo(a, 3, 3);
  EXPECT_DOUBLE_EQ(m.fill_in(), 1.0);
  EXPECT_EQ(m.num_blocks(), 20u * 3 - 2);  // tridiagonal block count
  // Misaligned blocking pays fill-in.
  const auto m42 = BcsrMatrix<double>::from_coo(a, 4, 2);
  EXPECT_GT(m42.fill_in(), 1.1);
}

TEST(Bcsr, ChooserPicksNativeBlockSize) {
  const auto a = block_tridiagonal(24, 3);
  const auto [br, bc] = BcsrMatrix<double>::choose_block_size(a);
  EXPECT_EQ(br, 3);
  EXPECT_EQ(bc, 3);
  // On a pure point matrix the chooser stays at 1x1-ish fill.
  Rng rng(7);
  Coo<double> pts(400, 400);
  for (int k = 0; k < 800; ++k) {
    pts.add(rng.next_index(0, 399), rng.next_index(0, 399), 1.0);
  }
  pts.canonicalize();
  const auto [pr, pc] = BcsrMatrix<double>::choose_block_size(pts);
  EXPECT_LE(pr * pc, 2);
}

TEST(Bcsr, FootprintBeatsCsrOnBlockMatrix) {
  const auto a = block_tridiagonal(60, 4);
  const auto bcsr = BcsrMatrix<double>::from_coo(a, 4, 4);
  const auto csr = CsrMatrix<double>::from_coo(a);
  EXPECT_LT(bcsr.footprint_bytes(), csr.footprint_bytes());
}

TEST(Dcsr, SpmvMatchesOnSuiteMatrices) {
  for (int id : {3, 9, 18}) {
    const auto a = paper_matrix(id).generate(0.02);
    expect_spmv_matches(DcsrMatrix<double>::from_coo(a), a);
  }
}

TEST(Dcsr, RoundTripExact) {
  Rng rng(41);
  auto a = dense_band(300, 4);
  inject_scatter(a, 60, rng);
  const auto m = DcsrMatrix<double>::from_coo(a);
  const Coo<double> back = m.to_coo();
  EXPECT_EQ(back.row_indices(), a.row_indices());
  EXPECT_EQ(back.col_indices(), a.col_indices());
  EXPECT_EQ(back.values(), a.values());
}

TEST(Dcsr, CompressesBandedIndexStream) {
  const auto banded = dense_band(2048, 8);
  const auto m = DcsrMatrix<double>::from_coo(banded);
  // Deltas within the band are 1 byte; first-of-row entries cost 4.
  EXPECT_LT(m.index_compression(), 0.4);
  EXPECT_LT(m.footprint_bytes(),
            CsrMatrix<double>::from_coo(banded).footprint_bytes());
}

TEST(Dcsr, HandlesLargeDeltasViaEscape) {
  Coo<double> a(4, 1000000);
  a.add(0, 0, 1.0);
  a.add(0, 999999, 2.0);  // delta 999999 >> 255
  a.add(1, 500000, 3.0);
  a.canonicalize();
  const auto m = DcsrMatrix<double>::from_coo(a);
  expect_spmv_matches(m, a);
  const Coo<double> back = m.to_coo();
  EXPECT_EQ(back.col_indices(), a.col_indices());
}

TEST(Spy, DiagonalAndDensityGlyphs) {
  // Pure main diagonal: the spy shows a diagonal line of non-space glyphs.
  Coo<double> a(64, 64);
  for (index_t i = 0; i < 64; ++i) a.add(i, i, 1.0);
  a.canonicalize();
  const std::string s = spy_string(a, 16);
  EXPECT_NE(s.find('+'), std::string::npos);
  // Dense matrix: mostly '#'.
  Coo<double> dense(32, 32);
  for (index_t r = 0; r < 32; ++r) {
    for (index_t c = 0; c < 32; ++c) dense.add(r, c, 1.0);
  }
  dense.canonicalize();
  const std::string d = spy_string(dense, 16);
  EXPECT_GT(std::count(d.begin(), d.end(), '#'), 32);
  // Empty-structure matrix renders all spaces inside the frame.
  Coo<double> empty(16, 16);
  empty.canonicalize();
  const std::string e = spy_string(empty, 8);
  EXPECT_EQ(std::count(e.begin(), e.end(), '#'), 0);
}

}  // namespace
}  // namespace crsd
