// Unit tests for the baseline storage formats (CSR/DIA/ELL/HYB): builds,
// SpMV correctness vs the COO reference, parallel equivalence, footprints,
// and the DIA overflow guard.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "formats/csr.hpp"
#include "formats/dia.hpp"
#include "formats/ell.hpp"
#include "formats/format.hpp"
#include "formats/hyb.hpp"
#include "matrix/generators.hpp"
#include "matrix/stats.hpp"

namespace crsd {
namespace {

Coo<double> random_matrix(index_t rows, index_t cols, double density,
                          std::uint64_t seed) {
  Rng rng(seed);
  Coo<double> a(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      if (rng.next_bool(density)) a.add(r, c, rng.next_double(-2.0, 2.0));
    }
  }
  a.canonicalize();
  return a;
}

std::vector<double> random_vector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  return x;
}

template <typename Matrix>
void expect_spmv_matches(const Matrix& m, const Coo<double>& ref,
                         double tol = 1e-12) {
  const auto x = random_vector(ref.num_cols(), 42);
  std::vector<double> want(static_cast<std::size_t>(ref.num_rows()));
  std::vector<double> got(static_cast<std::size_t>(ref.num_rows()), -99.0);
  ref.spmv_reference(x.data(), want.data());
  m.spmv(x.data(), got.data());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol) << "row " << i;
  }
  // Parallel path must agree exactly with the serial path's partitioning
  // tolerance (same per-row accumulation order).
  ThreadPool pool(4);
  std::vector<double> par(static_cast<std::size_t>(ref.num_rows()), -99.0);
  m.spmv_parallel(pool, x.data(), par.data());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(par[i], want[i], tol) << "row " << i;
  }
}

TEST(FormatNames, RoundTrip) {
  for (Format f : {Format::kCsr, Format::kDia, Format::kEll, Format::kHyb,
                   Format::kCoo, Format::kCrsd}) {
    EXPECT_EQ(parse_format(format_name(f)), f);
  }
  EXPECT_EQ(parse_format("dia"), Format::kDia);
  EXPECT_THROW(parse_format("nope"), Error);
}

TEST(Csr, BuildStructure) {
  Coo<double> a(3, 4);
  a.add(0, 1, 1.0);
  a.add(0, 3, 2.0);
  a.add(2, 0, 3.0);
  a.canonicalize();
  const auto m = CsrMatrix<double>::from_coo(a);
  EXPECT_EQ(m.row_ptr(), (std::vector<index_t>{0, 2, 2, 3}));
  EXPECT_EQ(m.col_idx(), (std::vector<index_t>{1, 3, 0}));
  EXPECT_EQ(m.nnz(), 3u);
}

TEST(Csr, SpmvDenseRandom) {
  const auto a = random_matrix(64, 64, 0.2, 1);
  expect_spmv_matches(CsrMatrix<double>::from_coo(a), a);
}

TEST(Csr, SpmvRectangular) {
  const auto a = random_matrix(37, 91, 0.1, 2);
  expect_spmv_matches(CsrMatrix<double>::from_coo(a), a);
}

TEST(Csr, EmptyRowsWriteZero) {
  Coo<double> a(5, 5);
  a.add(2, 2, 1.0);
  a.canonicalize();
  const auto m = CsrMatrix<double>::from_coo(a);
  std::vector<double> x(5, 1.0), y(5, -1.0);
  m.spmv(x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
}

TEST(Dia, BuildOffsetsSorted) {
  Coo<double> a(4, 4);
  a.add(3, 0, 1.0);  // offset -3
  a.add(0, 2, 2.0);  // offset +2
  a.add(1, 1, 3.0);  // offset 0
  a.add(2, 2, 4.0);  // offset 0
  a.canonicalize();
  const auto m = DiaMatrix<double>::from_coo(a);
  EXPECT_EQ(m.offsets(), (std::vector<diag_offset_t>{-3, 0, 2}));
  EXPECT_EQ(m.num_diagonals(), 3);
  EXPECT_EQ(m.values().size(), 12u);
}

TEST(Dia, SpmvStencil) {
  const auto a = stencil_5pt_2d(9, 7);
  expect_spmv_matches(DiaMatrix<double>::from_coo(a), a);
}

TEST(Dia, SpmvRectangularClampsRange) {
  Coo<double> a(4, 7);
  a.add(0, 0, 1.0);
  a.add(0, 6, 2.0);  // offset +6 exists only for row 0
  a.add(3, 1, 3.0);
  a.canonicalize();
  expect_spmv_matches(DiaMatrix<double>::from_coo(a), a);
}

TEST(Dia, OverflowGuardThrows) {
  const auto a = stencil_5pt_2d(10, 10);  // 5 diagonals * 100 rows = 500
  EXPECT_NO_THROW(DiaMatrix<double>::from_coo(a, 500));
  EXPECT_THROW(DiaMatrix<double>::from_coo(a, 499), Error);
}

TEST(Dia, RequiredElementsMatchesStats) {
  const auto a = stencil_5pt_2d(10, 10);
  const auto s = compute_stats(a);
  EXPECT_EQ(DiaMatrix<double>::required_elements(s), 500u);
  const auto m = DiaMatrix<double>::from_coo(a);
  EXPECT_EQ(m.values().size(), 500u);
}

TEST(Ell, WidthIsMaxRowNnz) {
  const auto a = random_matrix(50, 50, 0.1, 3);
  const auto s = compute_stats(a);
  const auto m = EllMatrix<double>::from_coo(a);
  EXPECT_EQ(m.width(), s.max_nnz_per_row);
  EXPECT_EQ(m.padded_elements(), s.ell_padded_elements());
  expect_spmv_matches(m, a);
}

TEST(Ell, OverflowWithoutSinkThrows) {
  Coo<double> a(2, 4);
  for (index_t c = 0; c < 4; ++c) a.add(0, c, 1.0);
  a.add(1, 0, 1.0);
  a.canonicalize();
  EXPECT_THROW(EllMatrix<double>::from_coo(a, 2), Error);
  Coo<double> overflow(2, 4);
  const auto m = EllMatrix<double>::from_coo(a, 2, &overflow);
  EXPECT_EQ(m.width(), 2);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(overflow.nnz(), 2u);
}

TEST(Hyb, UniformRowsStayPureEll) {
  // nemeth-like: all rows the same width => entire matrix in ELL
  // (paper: matrices 1..14 choose the entire ELL format).
  const auto a = dense_band(256, 3);
  const auto m = HybMatrix<double>::from_coo(a);
  EXPECT_EQ(m.coo_nnz(), 0u);
  expect_spmv_matches(m, a);
}

TEST(Hyb, HeavyRowsSpillToCoo) {
  Rng rng(11);
  auto a = stencil_5pt_2d(32, 32);
  // A handful of dense rows force a COO tail.
  Coo<double> b(a.num_rows(), a.num_cols());
  for (size64_t k = 0; k < a.nnz(); ++k) {
    b.add(a.row_indices()[k], a.col_indices()[k], a.values()[k]);
  }
  for (index_t c = 0; c < 200; ++c) b.add(7, c, 0.5);
  b.canonicalize();
  const auto m = HybMatrix<double>::from_coo(b);
  EXPECT_GT(m.coo_nnz(), 0u);
  EXPECT_LT(m.ell().width(), 200);
  EXPECT_EQ(m.nnz(), b.nnz());
  expect_spmv_matches(m, b);
}

TEST(Hyb, SplitWidthMinimizesCostModel) {
  // 4096 short rows plus 100 heavy rows: padding ELL out to the heavy width
  // would cost ~11x the optimum, so the heuristic must truncate and spill.
  Coo<double> a(4096, 4096);
  for (index_t r = 0; r < 4096; ++r) a.add(r, r, 2.0);
  for (index_t r = 0; r < 100; ++r) {
    for (index_t c = 0; c < 50; ++c) a.add(r * 40, c + 100, 0.5);
  }
  a.canonicalize();
  const index_t k = HybMatrix<double>::default_split_width(a);
  EXPECT_GE(k, 1);
  EXPECT_LE(k, 4);  // near the dominant width, far below the heavy tail
  const auto m = HybMatrix<double>::from_coo(a);
  EXPECT_GT(m.coo_nnz(), 4000u);
  expect_spmv_matches(m, a);
}

TEST(Hyb, UniformWidthPicksMaxWidth) {
  const auto a = dense_band(512, 2);
  EXPECT_EQ(HybMatrix<double>::default_split_width(a), 5);
}

TEST(Footprints, OrderingMatchesStorageTheory) {
  // For a scattered-diagonal matrix DIA must dwarf CSR and ELL.
  Rng rng(13);
  const auto a = fem_shell_like(2048, 8, 2, 6, 1.0, rng);
  const auto csr = CsrMatrix<double>::from_coo(a);
  const auto dia = DiaMatrix<double>::from_coo(a);
  const auto ell = EllMatrix<double>::from_coo(a);
  EXPECT_GT(dia.footprint_bytes(), 2 * csr.footprint_bytes());
  EXPECT_LT(ell.footprint_bytes(), dia.footprint_bytes());
}

TEST(AllFormats, AgreeOnAstroMatrix) {
  Rng rng(14);
  const auto a = astro_convection(10, 10, 6, true, rng);
  expect_spmv_matches(CsrMatrix<double>::from_coo(a), a);
  expect_spmv_matches(DiaMatrix<double>::from_coo(a), a);
  expect_spmv_matches(EllMatrix<double>::from_coo(a), a);
  expect_spmv_matches(HybMatrix<double>::from_coo(a), a);
}

TEST(AllFormats, SinglePrecisionAgrees) {
  Rng rng(15);
  const auto ad = astro_convection(8, 8, 5, false, rng);
  const auto a = ad.cast<float>();
  const auto x = random_vector(a.num_cols(), 21);
  std::vector<float> xf(x.begin(), x.end());
  std::vector<float> want(static_cast<std::size_t>(a.num_rows()));
  a.spmv_reference(xf.data(), want.data());
  std::vector<float> got(want.size());
  CsrMatrix<float>::from_coo(a).spmv(xf.data(), got.data());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-4f);
  }
  HybMatrix<float>::from_coo(a).spmv(xf.data(), got.data());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-4f);
  }
}

}  // namespace
}  // namespace crsd
