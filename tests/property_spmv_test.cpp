// Property tests: every storage format must compute the same y = A*x as the
// COO reference, across random structures, the paper suite at small scale,
// both precisions, and a sweep of CRSD configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "formats/csr.hpp"
#include "formats/dia.hpp"
#include "formats/ell.hpp"
#include "formats/hyb.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"

namespace crsd {
namespace {

template <Real T>
std::vector<T> random_vector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = static_cast<T>(rng.next_double(-1.0, 1.0));
  return x;
}

/// Relative-error check: |got - want| <= tol * (1 + |want|).
template <Real T>
void expect_close(const std::vector<T>& got, const std::vector<T>& want,
                  double tol, const char* label) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double g = static_cast<double>(got[i]);
    const double w = static_cast<double>(want[i]);
    ASSERT_LE(std::abs(g - w), tol * (1.0 + std::abs(w)))
        << label << " row " << i;
  }
}

template <Real T>
void check_all_formats(const Coo<T>& a, double tol) {
  const auto x = random_vector<T>(a.num_cols(), 99);
  std::vector<T> want(static_cast<std::size_t>(a.num_rows()));
  a.spmv_reference(x.data(), want.data());
  std::vector<T> y(want.size());

  CsrMatrix<T>::from_coo(a).spmv(x.data(), y.data());
  expect_close(y, want, tol, "CSR");
  DiaMatrix<T>::from_coo(a).spmv(x.data(), y.data());
  expect_close(y, want, tol, "DIA");
  EllMatrix<T>::from_coo(a).spmv(x.data(), y.data());
  expect_close(y, want, tol, "ELL");
  HybMatrix<T>::from_coo(a).spmv(x.data(), y.data());
  expect_close(y, want, tol, "HYB");
  build(a).spmv(x.data(), y.data());
  expect_close(y, want, tol, "CRSD");
}

// ---------------------------------------------------------------------------
// Random structured matrices: (generator kind, seed) sweep.

class RandomStructureSpmv
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

Coo<double> make_random_structure(int kind, std::uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case 0: {  // pure random scatter
      Coo<double> a(200, 200);
      for (int k = 0; k < 900; ++k) {
        a.add(rng.next_index(0, 199), rng.next_index(0, 199),
              rng.next_double(-1, 1));
      }
      a.canonicalize();
      return a;
    }
    case 1:  // banded + scatter
    {
      auto a = dense_band(300, 4);
      inject_scatter(a, 60, rng);
      return a;
    }
    case 2:  // patterned diagonals
      return fem_shell_like(1024, 6, 2, 5, 1.0, rng);
    case 3:  // broken diagonals
      return broken_diagonals(
          700, {{9, 0.4, 3}, {-9, 0.7, 2}, {1, 0.9, 1}, {-250, 0.3, 4}}, rng);
    case 4:  // astro
      return astro_convection(9, 9, 7, (seed % 2) == 0, rng);
    default:  // rectangular-ish band (rows != cols exercised via offsets)
    {
      Coo<double> a(257, 311);
      for (index_t r = 0; r < 257; ++r) {
        for (diag_offset_t off : {-40, 0, 1, 2, 54}) {
          const std::int64_t c = r + off;
          if (c >= 0 && c < 311 && rng.next_bool(0.8)) {
            a.add(r, static_cast<index_t>(c), rng.next_double(-1, 1));
          }
        }
      }
      a.canonicalize();
      return a;
    }
  }
}

TEST_P(RandomStructureSpmv, AllFormatsMatchReferenceDouble) {
  const auto [kind, seed] = GetParam();
  const auto a = make_random_structure(kind, 1000 + seed);
  check_all_formats(a, 1e-12);
}

TEST_P(RandomStructureSpmv, AllFormatsMatchReferenceSingle) {
  const auto [kind, seed] = GetParam();
  const auto a = make_random_structure(kind, 2000 + seed);
  check_all_formats(a.cast<float>(), 2e-4);
}

INSTANTIATE_TEST_SUITE_P(Structures, RandomStructureSpmv,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 3)),
                         [](const auto& suite_info) {
                           return "kind" +
                                  std::to_string(std::get<0>(suite_info.param)) +
                                  "_seed" +
                                  std::to_string(std::get<1>(suite_info.param));
                         });

// ---------------------------------------------------------------------------
// CRSD configuration sweep on one gnarly matrix.

class CrsdConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CrsdConfigSweep, MatchesReference) {
  const auto [mrows, gap, min_fill_pct] = GetParam();
  Rng rng(77);
  const auto a = astro_convection(8, 8, 6, true, rng);
  CrsdConfig cfg;
  cfg.mrows = mrows;
  cfg.fill_max_gap_segments = gap;
  cfg.live_min_fill = min_fill_pct / 100.0;
  const auto m = build(a, cfg);
  const auto x = random_vector<double>(a.num_cols(), 5);
  std::vector<double> want(static_cast<std::size_t>(a.num_rows())),
      got(static_cast<std::size_t>(a.num_rows()));
  a.spmv_reference(x.data(), want.data());
  m.spmv(x.data(), got.data());
  expect_close(got, want, 1e-12, "CRSD");
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CrsdConfigSweep,
    ::testing::Combine(::testing::Values(1, 7, 32, 64, 512),
                       ::testing::Values(0, 1, 4),
                       ::testing::Values(0, 50, 100)),
    [](const auto& suite_info) {
      return "mrows" + std::to_string(std::get<0>(suite_info.param)) + "_gap" +
             std::to_string(std::get<1>(suite_info.param)) + "_fill" +
             std::to_string(std::get<2>(suite_info.param));
    });

// ---------------------------------------------------------------------------
// Paper suite at small scale: every matrix, every format, both precisions.

class PaperSuiteSpmv : public ::testing::TestWithParam<int> {};

TEST_P(PaperSuiteSpmv, AllFormatsMatchReference) {
  const auto& spec = paper_matrix(GetParam());
  const auto a = spec.generate(0.02);
  check_all_formats(a, 1e-12);
  check_all_formats(a.cast<float>(), 3e-4);
}

INSTANTIATE_TEST_SUITE_P(Suite, PaperSuiteSpmv, ::testing::Range(1, 24),
                         [](const auto& suite_info) {
                           return paper_matrix(suite_info.param).name;
                         });

// ---------------------------------------------------------------------------
// Linearity property: SpMV must be linear in x for every format.

TEST(Linearity, CrsdIsLinearOperator) {
  Rng rng(123);
  const auto a = fem_shell_like(2048, 6, 2, 4, 1.0, rng);
  const auto m = build(a);
  const auto x1 = random_vector<double>(a.num_cols(), 1);
  const auto x2 = random_vector<double>(a.num_cols(), 2);
  std::vector<double> combo(x1.size());
  const double alpha = 0.7, beta = -1.3;
  for (std::size_t i = 0; i < combo.size(); ++i) {
    combo[i] = alpha * x1[i] + beta * x2[i];
  }
  std::vector<double> y1(x1.size()), y2(x1.size()), yc(x1.size());
  m.spmv(x1.data(), y1.data());
  m.spmv(x2.data(), y2.data());
  m.spmv(combo.data(), yc.data());
  for (std::size_t i = 0; i < yc.size(); ++i) {
    EXPECT_NEAR(yc[i], alpha * y1[i] + beta * y2[i],
                1e-9 * (1.0 + std::abs(yc[i])));
  }
}

}  // namespace
}  // namespace crsd
