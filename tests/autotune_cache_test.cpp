// Autotuner search-policy suite: persistent-cache hit/miss behaviour and
// recovery from corrupted entries, cost-model pruning accounting (no silent
// caps — measured + pruned must equal the grid), concurrent evaluation
// determinism, the structure-hash cache key, and the summary report.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/rng.hpp"
#include "kernels/crsd_autotune.hpp"
#include "matrix/generators.hpp"

namespace crsd {
namespace {

namespace fs = std::filesystem;

/// Fresh private cache directory per test (removed on destruction), so
/// tests cannot see each other's entries or leftovers of earlier runs.
struct TempCacheDir {
  fs::path path;
  explicit TempCacheDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("crsd-tune-test-" + tag + "-" + std::to_string(::getpid()));
    fs::remove_all(path);
  }
  ~TempCacheDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

kernels::AutotuneSpace small_space() {
  kernels::AutotuneSpace space;
  space.mrows = {32, 64};
  space.fill_max_gap_segments = {0, 1};
  space.live_min_fill = {0.5};
  space.use_local_memory = {true, false};
  return space;  // 2 x 2 x 1 configs, 8 trials
}

Coo<double> test_matrix(int seed = 3) {
  Rng rng(seed);
  auto a = broken_diagonals(
      400, {{-64, 0.6, 5}, {-1, 1.0, 1}, {0, 1.0, 1}, {1, 1.0, 1},
            {64, 0.5, 6}},
      rng);
  inject_scatter(a, 40, rng);
  return a;
}

TEST(AutotuneCache, MissThenHitWithZeroMeasuredTrials) {
  TempCacheDir dir("hit");
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  const auto a = test_matrix();
  kernels::AutotuneOptions opts;
  opts.cache_dir = dir.path.string();

  const auto cold = kernels::autotune_crsd(dev, a, small_space(), opts);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.measured_trials, 0);
  EXPECT_FALSE(cold.cache_key.empty());

  // Warm run: same matrix, same space -> the acceptance path. Zero trials
  // measured, best configuration reproduced exactly.
  const auto warm = kernels::autotune_crsd(dev, a, small_space(), opts);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.measured_trials, 0);
  EXPECT_TRUE(warm.trials.empty());
  EXPECT_EQ(warm.best_config.mrows, cold.best_config.mrows);
  EXPECT_EQ(warm.best_config.fill_max_gap_segments,
            cold.best_config.fill_max_gap_segments);
  EXPECT_DOUBLE_EQ(warm.best_config.live_min_fill,
                   cold.best_config.live_min_fill);
  EXPECT_EQ(warm.best_local_memory, cold.best_local_memory);
  EXPECT_DOUBLE_EQ(warm.best_seconds, cold.best_seconds);
  EXPECT_NE(warm.summary().find("cache hit"), std::string::npos);
}

TEST(AutotuneCache, CorruptedEntryIsAMissAndGetsRepaired) {
  TempCacheDir dir("corrupt");
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  const auto a = test_matrix();
  kernels::AutotuneOptions opts;
  opts.cache_dir = dir.path.string();

  const auto cold = kernels::autotune_crsd(dev, a, small_space(), opts);
  const fs::path entry = dir.path / (cold.cache_key + ".txt");
  ASSERT_TRUE(fs::exists(entry));

  // Corrupt the entry in several ways; each must read as a miss, never as
  // garbage configuration, and the re-tune must repair the file.
  for (const char* garbage :
       {"", "not-a-cache-file\n",
        "crsd-tune-v1\nmrows 0\ngap 0\nmin_fill 0.5\nlocal 1\nseconds 1e-5\n",
        "crsd-tune-v1\nmrows 64\ngap 1\nmin_fill 2.5\nlocal 1\nseconds 1e-5\n",
        "crsd-tune-v1\nmrows sixty-four\n"}) {
    {
      std::ofstream out(entry);
      out << garbage;
    }
    const auto retuned = kernels::autotune_crsd(dev, a, small_space(), opts);
    EXPECT_FALSE(retuned.cache_hit) << "garbage: " << garbage;
    EXPECT_GT(retuned.measured_trials, 0);
    EXPECT_EQ(retuned.best_config.mrows, cold.best_config.mrows);
  }
  // The last re-tune republished a good entry.
  const auto warm = kernels::autotune_crsd(dev, a, small_space(), opts);
  EXPECT_TRUE(warm.cache_hit);
}

TEST(AutotuneCache, KeyTracksStructureNotValues) {
  // Same sparsity pattern, different values -> same hash (tuning decisions
  // depend only on structure). Different pattern -> different hash.
  Coo<double> a(100, 100), b(100, 100), c(100, 100);
  for (index_t r = 0; r < 100; ++r) {
    a.add(r, r, 1.0);
    b.add(r, r, 2.0 + r);
    if (r + 1 < 100) c.add(r, r + 1, 1.0);
  }
  a.canonicalize();
  b.canonicalize();
  c.canonicalize();
  EXPECT_EQ(structure_hash(a), structure_hash(b));
  EXPECT_NE(structure_hash(a), structure_hash(c));
}

TEST(AutotuneCache, StorageModeKeysTheCache) {
  // An fp32 (or narrow/delta-index) tuning run streams different bytes and
  // can crown a different winner, so it must not reuse — or overwrite — the
  // entry the fp64 run stored for the same structure.
  TempCacheDir dir("storage");
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  const auto a = test_matrix();
  kernels::AutotuneOptions fp64_opts;
  fp64_opts.cache_dir = dir.path.string();

  const auto fp64_cold = kernels::autotune_crsd(dev, a, small_space(),
                                                fp64_opts);
  EXPECT_FALSE(fp64_cold.cache_hit);

  kernels::AutotuneOptions fp32_opts = fp64_opts;
  fp32_opts.storage.value_precision = ValuePrecision::kFloat32;
  fp32_opts.storage.narrow_scatter_indices = true;
  const auto fp32_cold = kernels::autotune_crsd(dev, a, small_space(),
                                                fp32_opts);
  // Regression: the compact build keys its own entry — a hit here means it
  // silently reused the fp64 result.
  EXPECT_FALSE(fp32_cold.cache_hit);
  EXPECT_NE(fp32_cold.cache_key, fp64_cold.cache_key);
  EXPECT_GT(fp32_cold.measured_trials, 0);
  // Every candidate was built with the requested compaction.
  for (const auto& trial : fp32_cold.trials) {
    EXPECT_EQ(trial.config.storage.value_precision, ValuePrecision::kFloat32);
    EXPECT_TRUE(trial.config.storage.narrow_scatter_indices);
  }

  // Each mode hits its own entry on the warm run, and the cached config
  // carries the mode so a rebuild from it compacts identically.
  const auto fp64_warm = kernels::autotune_crsd(dev, a, small_space(),
                                                fp64_opts);
  EXPECT_TRUE(fp64_warm.cache_hit);
  EXPECT_TRUE(fp64_warm.best_config.storage.is_default());
  const auto fp32_warm = kernels::autotune_crsd(dev, a, small_space(),
                                                fp32_opts);
  EXPECT_TRUE(fp32_warm.cache_hit);
  EXPECT_EQ(fp32_warm.best_config.storage.value_precision,
            ValuePrecision::kFloat32);

  // Delta-index tuning keys a third entry.
  kernels::AutotuneOptions delta_opts = fp64_opts;
  delta_opts.storage.delta_scatter_indices = true;
  const auto delta_cold = kernels::autotune_crsd(dev, a, small_space(),
                                                 delta_opts);
  EXPECT_FALSE(delta_cold.cache_hit);
  EXPECT_NE(delta_cold.cache_key, fp64_cold.cache_key);
  EXPECT_NE(delta_cold.cache_key, fp32_cold.cache_key);
}

TEST(AutotuneCache, PruningAccountsForEveryTrial) {
  TempCacheDir dir("prune");
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  const auto a = test_matrix();
  kernels::AutotuneOptions opts;
  opts.cache_dir = dir.path.string();
  opts.prune_margin = 1.0;  // aggressive: only the predicted-best survives

  const auto result = kernels::autotune_crsd(dev, a, small_space(), opts);
  // No silent caps: every grid point is accounted for, measured or pruned.
  EXPECT_EQ(static_cast<std::size_t>(result.measured_trials +
                                     result.pruned_trials),
            result.trials.size());
  EXPECT_GT(result.measured_trials, 0);
  for (const auto& trial : result.trials) {
    EXPECT_GT(trial.predicted_seconds, 0.0);
    if (trial.measured) {
      EXPECT_GT(trial.seconds, 0.0);
      EXPECT_GE(trial.seconds, result.best_seconds);
    } else {
      EXPECT_TRUE(std::isinf(trial.seconds));
    }
  }
  // The winner always comes from a measured trial.
  EXPECT_TRUE(std::isfinite(result.best_seconds));

  const std::string summary = result.summary();
  EXPECT_NE(summary.find("measured"), std::string::npos);
  EXPECT_NE(summary.find("pruned"), std::string::npos);
  EXPECT_NE(summary.find("model rel error"), std::string::npos);
}

TEST(AutotuneCache, PrunedBestStaysCloseToExhaustive) {
  // Pruning measures a subset, so its best can only be >= the exhaustive
  // best; the model's ranking claim is that it stays within a few percent.
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  for (int seed : {3, 11}) {
    TempCacheDir dir("winner" + std::to_string(seed));
    const auto a = test_matrix(seed);
    const auto exhaustive = kernels::autotune_crsd(dev, a, small_space());
    kernels::AutotuneOptions opts;
    opts.cache_dir = dir.path.string();
    const auto pruned = kernels::autotune_crsd(dev, a, small_space(), opts);
    EXPECT_GE(pruned.best_seconds, exhaustive.best_seconds * (1.0 - 1e-12));
    EXPECT_LE(pruned.best_seconds, exhaustive.best_seconds * 1.05)
        << "cost-model pruning discarded a much faster configuration";
  }
}

TEST(AutotuneCache, ParallelEvaluationMatchesSerial) {
  // Trials land in fixed grid slots and simulated seconds are derived from
  // event counters, so a pool changes wall clock only — never the result.
  TempCacheDir dir("par");
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  const auto a = test_matrix();
  kernels::AutotuneOptions serial_opts;
  serial_opts.use_cache = false;
  const auto serial = kernels::autotune_crsd(dev, a, small_space(),
                                             serial_opts);
  ThreadPool pool(4);
  kernels::AutotuneOptions par_opts;
  par_opts.use_cache = false;
  par_opts.pool = &pool;
  const auto parallel = kernels::autotune_crsd(dev, a, small_space(),
                                               par_opts);
  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    EXPECT_EQ(serial.trials[i].measured, parallel.trials[i].measured) << i;
    EXPECT_DOUBLE_EQ(serial.trials[i].seconds, parallel.trials[i].seconds)
        << i;
    EXPECT_DOUBLE_EQ(serial.trials[i].predicted_seconds,
                     parallel.trials[i].predicted_seconds)
        << i;
  }
  EXPECT_DOUBLE_EQ(serial.best_seconds, parallel.best_seconds);
  EXPECT_EQ(serial.best_config.mrows, parallel.best_config.mrows);
}

TEST(AutotuneCache, LegacyOverloadStaysExhaustive) {
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  const auto a = test_matrix();
  const auto result = kernels::autotune_crsd(dev, a, small_space());
  EXPECT_EQ(static_cast<std::size_t>(result.measured_trials),
            result.trials.size());
  EXPECT_EQ(result.pruned_trials, 0);
  EXPECT_FALSE(result.cache_hit);
  for (const auto& trial : result.trials) EXPECT_TRUE(trial.measured);
}

}  // namespace
}  // namespace crsd
