// Regression tests for the JIT disk-cache key: the key must cover compiler,
// flags, and source, so changing CRSD_JIT_FLAGS (or Options::flags) can
// never resurrect an object built with different codegen options — the bug
// class where a sanitizer or -ffast-math run silently reuses plain -O3
// objects.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "codegen/jit.hpp"

namespace crsd::codegen {
namespace {

namespace fs = std::filesystem;

const char* const kSource =
    "extern \"C\" int crsd_cache_probe() { return 42; }\n";

JitCompiler::Options base_options(const std::string& tag) {
  JitCompiler::Options opts;
  opts.cache_dir = (fs::temp_directory_path() /
                    ("crsd-key-cache-" + tag + "-" + std::to_string(::getpid())))
                       .string();
  return opts;
}

TEST(JitCacheKey, FlagsParticipateInTheKey) {
  JitCompiler::Options a = base_options("flags");
  JitCompiler::Options b = a;
  a.flags = "-O1 -shared -fPIC -std=c++20";
  b.flags = "-O2 -shared -fPIC -std=c++20";
  const JitCompiler ca(a);
  const JitCompiler cb(b);
  EXPECT_NE(ca.object_path_for(kSource), cb.object_path_for(kSource));
}

TEST(JitCacheKey, CompilerParticipatesInTheKey) {
  JitCompiler::Options a = base_options("cc");
  JitCompiler::Options b = a;
  a.compiler = "g++";
  b.compiler = "clang++";
  EXPECT_NE(JitCompiler(a).object_path_for(kSource),
            JitCompiler(b).object_path_for(kSource));
}

TEST(JitCacheKey, SameConfigurationIsStable) {
  const JitCompiler::Options opts = base_options("stable");
  EXPECT_EQ(JitCompiler(opts).object_path_for(kSource),
            JitCompiler(opts).object_path_for(kSource));
  EXPECT_NE(JitCompiler(opts).object_path_for(kSource),
            JitCompiler(opts).object_path_for(std::string(kSource) + "// v2"));
}

TEST(JitCacheKey, EnvFlagsReachTheDefaultCompiler) {
  // Default-constructed options read CRSD_JIT_FLAGS; two different values
  // must map the same source to different cache objects.
  const char* saved = std::getenv("CRSD_JIT_FLAGS");
  const std::string saved_copy = saved != nullptr ? saved : "";

  ::setenv("CRSD_JIT_FLAGS", "-O2 -shared -fPIC -std=c++20", 1);
  const std::string path_o2 = JitCompiler().object_path_for(kSource);
  ::setenv("CRSD_JIT_FLAGS",
           "-O2 -shared -fPIC -std=c++20 -fsanitize=thread", 1);
  const std::string path_tsan = JitCompiler().object_path_for(kSource);

  if (saved != nullptr) {
    ::setenv("CRSD_JIT_FLAGS", saved_copy.c_str(), 1);
  } else {
    ::unsetenv("CRSD_JIT_FLAGS");
  }
  EXPECT_NE(path_o2, path_tsan);
}

TEST(JitCacheKey, DifferentFlagsRecompileInsteadOfReusing) {
  if (!JitCompiler::compiler_available()) GTEST_SKIP();
  // One shared cache directory, two flag sets: each must compile its own
  // object (no cross-flag cache hit), and re-running with the same flags
  // must hit the cache.
  JitCompiler::Options a = base_options("recompile");
  JitCompiler::Options b = a;
  a.flags = "-O1 -shared -fPIC -std=c++20";
  b.flags = "-O2 -shared -fPIC -std=c++20";

  JitCompiler ca(a);
  (void)ca.compile_and_load(kSource);
  EXPECT_EQ(ca.compilations(), 1);
  EXPECT_EQ(ca.cache_hits(), 0);

  JitCompiler cb(b);
  (void)cb.compile_and_load(kSource);
  EXPECT_EQ(cb.compilations(), 1) << "different flags must not share objects";
  EXPECT_EQ(cb.cache_hits(), 0);

  JitCompiler ca2(a);
  (void)ca2.compile_and_load(kSource);
  EXPECT_EQ(ca2.compilations(), 0);
  EXPECT_EQ(ca2.cache_hits(), 1);

  fs::remove_all(a.cache_dir);
}

}  // namespace
}  // namespace crsd::codegen
