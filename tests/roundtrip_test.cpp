// Round-trip property tests: for every storage format F and every suite
// matrix A, F(A).to_coo() must equal A exactly (same triplets, same
// values). This pins the *storage* itself, independent of SpMV.
#include <gtest/gtest.h>

#include "core/build_api.hpp"
#include "core/inspect.hpp"
#include "formats/csr.hpp"
#include "formats/dia.hpp"
#include "formats/ell.hpp"
#include "formats/hyb.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"

namespace crsd {
namespace {

void expect_same_matrix(const Coo<double>& got, const Coo<double>& want,
                        const char* label) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << label;
  ASSERT_EQ(got.num_cols(), want.num_cols()) << label;
  ASSERT_EQ(got.nnz(), want.nnz()) << label;
  EXPECT_EQ(got.row_indices(), want.row_indices()) << label;
  EXPECT_EQ(got.col_indices(), want.col_indices()) << label;
  for (size64_t k = 0; k < want.nnz(); ++k) {
    ASSERT_DOUBLE_EQ(got.values()[k], want.values()[k]) << label << " @" << k;
  }
}

class RoundTripSuite : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripSuite, AllFormatsReconstructExactly) {
  const auto a = paper_matrix(GetParam()).generate(0.02);
  expect_same_matrix(CsrMatrix<double>::from_coo(a).to_coo(), a, "CSR");
  expect_same_matrix(DiaMatrix<double>::from_coo(a).to_coo(), a, "DIA");
  expect_same_matrix(EllMatrix<double>::from_coo(a).to_coo(), a, "ELL");
  expect_same_matrix(HybMatrix<double>::from_coo(a).to_coo(), a, "HYB");
  expect_same_matrix(crsd_to_coo(build(a)), a, "CRSD");
}

INSTANTIATE_TEST_SUITE_P(Suite, RoundTripSuite, ::testing::Range(1, 24),
                         [](const auto& suite_info) {
                           return paper_matrix(suite_info.param).name;
                         });

TEST(RoundTrip, CrsdKeepsScatterRowsOnceRegardlessOfZeroing) {
  Rng rng(9);
  auto a = dense_band(512, 2);
  inject_scatter(a, 40, rng);
  for (bool zero : {true, false}) {
    CrsdConfig cfg;
    cfg.mrows = 32;
    cfg.zero_scatter_rows_in_dia = zero;
    const auto m = build(a, cfg);
    ASSERT_GT(m.num_scatter_rows(), 0);
    expect_same_matrix(crsd_to_coo(m), a, zero ? "zeroed" : "kept");
  }
}

TEST(RoundTrip, CrsdMrowsSweep) {
  Rng rng(10);
  const auto a = astro_convection(8, 8, 5, true, rng);
  for (index_t mrows : {1, 16, 64, 300}) {
    CrsdConfig cfg;
    cfg.mrows = mrows;
    expect_same_matrix(crsd_to_coo(build(a, cfg)), a, "mrows");
  }
}

TEST(RoundTrip, RectangularFormats) {
  Rng rng(11);
  Coo<double> a(37, 91);
  for (index_t r = 0; r < 37; ++r) {
    for (diag_offset_t off : {-10, 0, 1, 40, 80}) {
      const std::int64_t c = r + off;
      if (c >= 0 && c < 91 && rng.next_bool(0.7)) {
        a.add(r, static_cast<index_t>(c), rng.next_double(0.1, 1.0));
      }
    }
  }
  a.canonicalize();
  expect_same_matrix(CsrMatrix<double>::from_coo(a).to_coo(), a, "CSR");
  expect_same_matrix(DiaMatrix<double>::from_coo(a).to_coo(), a, "DIA");
  expect_same_matrix(EllMatrix<double>::from_coo(a).to_coo(), a, "ELL");
  expect_same_matrix(crsd_to_coo(build(a)), a, "CRSD");
}

TEST(RoundTrip, SingleEntryMatrix) {
  Coo<double> a(5, 5);
  a.add(3, 1, 2.5);
  a.canonicalize();
  expect_same_matrix(crsd_to_coo(build(a)), a, "CRSD");
  expect_same_matrix(HybMatrix<double>::from_coo(a).to_coo(), a, "HYB");
}

}  // namespace
}  // namespace crsd
