// Tests for the synthetic matrix generators: dimensions, nnz accounting,
// diagonal structure, determinism, and the structural properties each family
// is supposed to exhibit.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "matrix/generators.hpp"
#include "matrix/stats.hpp"

namespace crsd {
namespace {

std::set<diag_offset_t> offsets_of(const Coo<double>& a) {
  std::set<diag_offset_t> out;
  for (size64_t k = 0; k < a.nnz(); ++k) {
    out.insert(a.col_indices()[k] - a.row_indices()[k]);
  }
  return out;
}

TEST(Stencil, FivePointStructure) {
  const auto a = stencil_5pt_2d(6, 4);
  EXPECT_EQ(a.num_rows(), 24);
  EXPECT_EQ(offsets_of(a), (std::set<diag_offset_t>{-6, -1, 0, 1, 6}));
  // Interior rows have 5 entries, corners 3.
  const StructureStats s = compute_stats(a);
  EXPECT_EQ(s.max_nnz_per_row, 5);
  EXPECT_EQ(s.min_nnz_per_row, 3);
  // nnz = 5*n - 2*nx - 2*ny boundary truncation.
  EXPECT_EQ(s.nnz, 5u * 24 - 2 * 6 - 2 * 4);
}

TEST(Stencil, FivePointIsDiagonallyDominantSpd) {
  const auto a = stencil_5pt_2d(5, 5);
  // Row sums strictly positive (weak dominance with the +shift).
  std::vector<double> x(25, 1.0), y(25);
  a.spmv_reference(x.data(), y.data());
  for (double v : y) EXPECT_GT(v, 0.0);
}

TEST(Stencil, SevenPoint3D) {
  const auto a = stencil_7pt_3d(4, 3, 2);
  EXPECT_EQ(a.num_rows(), 24);
  EXPECT_EQ(offsets_of(a),
            (std::set<diag_offset_t>{-12, -4, -1, 0, 1, 4, 12}));
}

TEST(Stencil, TwentySevenPoint3D) {
  const auto a = stencil_27pt_3d(5, 5, 5);
  EXPECT_EQ(a.num_rows(), 125);
  const StructureStats s = compute_stats(a);
  EXPECT_EQ(s.num_diagonals(), 27u);
  EXPECT_EQ(s.max_nnz_per_row, 27);
}

TEST(Stencil, SquareStencilHas25Diagonals) {
  const auto a = stencil_square_2d(16, 12, 2);
  const StructureStats s = compute_stats(a);
  EXPECT_EQ(s.num_diagonals(), 25u);  // kim1/kim2 structure
  EXPECT_EQ(s.max_nnz_per_row, 25);
}

TEST(DenseBand, WidthAndAdjacency) {
  const auto a = dense_band(100, 3);
  const StructureStats s = compute_stats(a);
  EXPECT_EQ(s.num_diagonals(), 7u);
  EXPECT_EQ(s.max_nnz_per_row, 7);
  // All offsets contiguous: one big AD group.
  EXPECT_EQ(offsets_of(a),
            (std::set<diag_offset_t>{-3, -2, -1, 0, 1, 2, 3}));
}

TEST(FullDiagonals, ExactOffsets) {
  Rng rng(1);
  const auto a = full_diagonals(50, {-7, 0, 3}, rng);
  EXPECT_EQ(offsets_of(a), (std::set<diag_offset_t>{-7, 0, 3}));
  const StructureStats s = compute_stats(a);
  // Each diagonal fully populated.
  for (const auto& d : s.diagonals) EXPECT_EQ(d.nnz, d.length);
}

TEST(PatternedDiagonals, BlockLocalOffsets) {
  Rng rng(2);
  std::vector<PatternBlock> blocks(2);
  blocks[0] = {50, {0, 1, 2}};
  blocks[1] = {50, {0, 10}};
  const auto a = patterned_diagonals(100, blocks, 1.0, rng);
  // Rows < 50 must never touch offset 10; rows >= 50 never offset 1.
  for (size64_t k = 0; k < a.nnz(); ++k) {
    const diag_offset_t off = a.col_indices()[k] - a.row_indices()[k];
    if (a.row_indices()[k] < 50) {
      EXPECT_TRUE(off == 0 || off == 1 || off == 2);
    } else {
      EXPECT_TRUE(off == 0 || off == 10);
    }
  }
}

TEST(PatternedDiagonals, RejectsIncompleteCover) {
  Rng rng(3);
  std::vector<PatternBlock> blocks(1);
  blocks[0] = {10, {0}};
  EXPECT_THROW(patterned_diagonals(20, blocks, 1.0, rng), Error);
}

TEST(FemShellLike, DiagonalCountGrowsWithBlocks) {
  Rng rng(4);
  const auto a = fem_shell_like(4096, 8, 2, 6, 1.0, rng);
  const StructureStats s = compute_stats(a);
  // 5 core + 8*6 private = 53 distinct diagonals.
  EXPECT_EQ(s.num_diagonals(), 53u);
  // Per-row width stays near core+extra regardless of total diagonals.
  EXPECT_LE(s.max_nnz_per_row, 11);
}

TEST(FemShellLike, DeterministicForSeed) {
  Rng r1(5), r2(5);
  const auto a = fem_shell_like(1024, 4, 1, 3, 1.0, r1);
  const auto b = fem_shell_like(1024, 4, 1, 3, 1.0, r2);
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.col_indices(), b.col_indices());
  EXPECT_EQ(a.values(), b.values());
}

TEST(BrokenDiagonals, CoverageAndSections) {
  Rng rng(6);
  const auto a =
      broken_diagonals(1000, {{5, 0.5, 2}, {-5, 1.0, 1}}, rng);
  const StructureStats s = compute_stats(a);
  ASSERT_EQ(s.num_diagonals(), 3u);
  // Main diagonal full.
  EXPECT_EQ(s.diagonals[1].offset, 0);
  EXPECT_EQ(s.diagonals[1].nnz, 1000u);
  // offset -5 full length; offset +5 about half.
  EXPECT_EQ(s.diagonals[0].nnz, s.diagonals[0].length);
  EXPECT_NEAR(double(s.diagonals[2].nnz) / double(s.diagonals[2].length), 0.5,
              0.01);
}

TEST(AstroConvection, UnstructuredHasMoreScatterAndSections) {
  Rng r1(7), r2(7);
  const auto structured = astro_convection(12, 12, 8, false, r1);
  const auto unstructured = astro_convection(12, 12, 8, true, r2);
  EXPECT_EQ(structured.num_rows(), 12 * 12 * 8);
  const StructureStats ss = compute_stats(structured);
  const StructureStats us = compute_stats(unstructured);
  // Backbone + couplings on both; unstructured adds scatter everywhere.
  EXPECT_GE(ss.num_diagonals(), 11u);
  EXPECT_GT(us.num_diagonals(), ss.num_diagonals());
}

TEST(InjectScatter, AddsRequestedEntries) {
  Rng rng(8);
  auto a = stencil_5pt_2d(10, 10);
  const size64_t before = a.nnz();
  inject_scatter(a, 50, rng);
  // A few collisions with existing entries are possible; most must land.
  EXPECT_GE(a.nnz(), before + 40);
  EXPECT_TRUE(a.is_canonical());
}

TEST(MakeDiagonallyDominant, EveryRowDominant) {
  Rng rng(9);
  auto a = full_diagonals(64, {-3, 0, 7}, rng);
  make_diagonally_dominant(a, 0.5);
  std::vector<double> diag(64, 0.0), offsum(64, 0.0);
  for (size64_t k = 0; k < a.nnz(); ++k) {
    const index_t r = a.row_indices()[k];
    if (r == a.col_indices()[k]) {
      diag[static_cast<std::size_t>(r)] = a.values()[k];
    } else {
      offsum[static_cast<std::size_t>(r)] += std::abs(a.values()[k]);
    }
  }
  for (index_t r = 0; r < 64; ++r) {
    EXPECT_GT(diag[static_cast<std::size_t>(r)],
              offsum[static_cast<std::size_t>(r)]);
  }
}

}  // namespace
}  // namespace crsd
