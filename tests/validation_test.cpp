// Defensive-validation tests: corrupted CRSD storage must be rejected by
// the container's invariant checks, the JIT driver must fail loudly with a
// broken compiler, and the logger must honour its threshold.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "codegen/jit.hpp"
#include "common/log.hpp"
#include "core/build_api.hpp"
#include "core/crsd_matrix.hpp"
#include "matrix/generators.hpp"
#include "matrix/stats.hpp"

namespace crsd {
namespace {

CrsdStorage<double> valid_storage() {
  CrsdStorage<double> s;
  s.num_rows = 8;
  s.num_cols = 8;
  s.mrows = 4;
  s.nnz = 8;
  DiagonalPattern p;
  p.start_row = 0;
  p.num_segments = 2;
  p.offsets = {0};
  p.groups = group_diagonals(p.offsets);
  s.patterns.push_back(p);
  s.dia_val.assign(8, 1.0);
  return s;
}

TEST(StorageValidation, AcceptsWellFormed) {
  EXPECT_NO_THROW({ CrsdMatrix<double> m(valid_storage()); (void)m; });
}

TEST(StorageValidation, RejectsBadMrows) {
  auto s = valid_storage();
  s.mrows = 0;
  EXPECT_THROW(CrsdMatrix<double>(std::move(s)), Error);
}

TEST(StorageValidation, RejectsUncoveredSegments) {
  auto s = valid_storage();
  s.patterns[0].num_segments = 1;  // second segment uncovered
  s.dia_val.resize(4);
  EXPECT_THROW(CrsdMatrix<double>(std::move(s)), Error);
}

TEST(StorageValidation, RejectsValueArraySizeMismatch) {
  auto s = valid_storage();
  s.dia_val.resize(7);
  EXPECT_THROW(CrsdMatrix<double>(std::move(s)), Error);
}

TEST(StorageValidation, RejectsWrongPatternStartRow) {
  auto s = valid_storage();
  s.patterns[0].start_row = 2;
  EXPECT_THROW(CrsdMatrix<double>(std::move(s)), Error);
}

TEST(StorageValidation, RejectsInconsistentGroups) {
  auto s = valid_storage();
  // Claim two groups for a single diagonal.
  s.patterns[0].groups.push_back(
      DiagonalGroup{GroupType::kNonAdjacent, 1, 0});
  EXPECT_THROW(CrsdMatrix<double>(std::move(s)), Error);
}

TEST(StorageValidation, RejectsUnsortedScatterRows) {
  auto s = valid_storage();
  s.scatter_rowno = {5, 2};
  s.scatter_width = 1;
  s.scatter_col.assign(2, kInvalidIndex);
  s.scatter_val.assign(2, 0.0);
  EXPECT_THROW(CrsdMatrix<double>(std::move(s)), Error);
}

TEST(StorageValidation, RejectsScatterArraySizeMismatch) {
  auto s = valid_storage();
  s.scatter_rowno = {3};
  s.scatter_width = 2;
  s.scatter_col.assign(1, kInvalidIndex);  // should be 2
  s.scatter_val.assign(1, 0.0);
  EXPECT_THROW(CrsdMatrix<double>(std::move(s)), Error);
}

TEST(JitValidation, BrokenCompilerFailsLoudly) {
  codegen::JitCompiler::Options opts;
  opts.compiler = "/bin/false";
  opts.cache_dir = (std::filesystem::temp_directory_path() /
                    ("crsd-badcc-" + std::to_string(::getpid())))
                       .string();
  codegen::JitCompiler compiler(opts);
  EXPECT_THROW(compiler.compile_and_load("int x;"), Error);
  EXPECT_EQ(compiler.cache_hits(), 0);
}

TEST(JitValidation, MissingCompilerBinaryFails) {
  codegen::JitCompiler::Options opts;
  opts.compiler = "/nonexistent/compiler-binary";
  opts.cache_dir = (std::filesystem::temp_directory_path() /
                    ("crsd-nocc-" + std::to_string(::getpid())))
                       .string();
  codegen::JitCompiler compiler(opts);
  EXPECT_THROW(compiler.compile_and_load("int x;"), Error);
}

TEST(Log, ThresholdFilters) {
  const LogLevel old = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  // Below-threshold macros are no-ops (observable via the threshold alone;
  // emission goes to stderr). Exercise the macros for coverage.
  CRSD_LOG_DEBUG("not shown " << 1);
  CRSD_LOG_INFO("not shown " << 2);
  set_log_threshold(LogLevel::kDebug);
  EXPECT_EQ(log_threshold(), LogLevel::kDebug);
  set_log_threshold(old);
}

TEST(CooValidation, NonCanonicalInputsRejectedEverywhere) {
  Coo<double> a(4, 4);
  a.add(0, 0, 1.0);  // never canonicalized
  EXPECT_THROW(build(a), Error);
  EXPECT_THROW(compute_stats(a), Error);
}

}  // namespace
}  // namespace crsd
