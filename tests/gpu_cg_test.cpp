// Tests for the device-resident CG solver over the simulated GPU.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "matrix/generators.hpp"
#include "solver/gpu_cg.hpp"

namespace crsd::solver {
namespace {

TEST(GpuCg, SolvesPoissonAndAccountsTime) {
  const auto a = stencil_5pt_2d(24, 24);
  const auto m = crsd::build(a, crsd::CrsdConfig{.mrows = 64});
  const index_t n = a.num_rows();
  Rng rng(1);
  std::vector<double> x_star(static_cast<std::size_t>(n));
  for (auto& v : x_star) v = rng.next_double(-1, 1);
  std::vector<double> b(static_cast<std::size_t>(n));
  a.spmv_reference(x_star.data(), b.data());

  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  SolveOptions opts;
  opts.max_iterations = 3000;
  opts.tolerance = 1e-11;
  const GpuSolveResult r =
      gpu_conjugate_gradient(dev, m, b.data(), x.data(), opts);
  ASSERT_TRUE(r.solve.converged);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_star[static_cast<std::size_t>(i)], 1e-6);
  }
  // Ledger sanity: all components populated, SpMV dominates vector ops per
  // iteration pricing only when the matrix is heavy enough; both positive.
  EXPECT_GT(r.timing.spmv_seconds, 0.0);
  EXPECT_GT(r.timing.vector_seconds, 0.0);
  EXPECT_GT(r.timing.transfer_seconds, 0.0);
  EXPECT_GT(r.timing.total_seconds(),
            std::max(r.timing.spmv_seconds, r.timing.vector_seconds));
  // Device memory fully released between iterations.
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(GpuCg, MatchesHostCgIterationCount) {
  const auto a = stencil_5pt_2d(20, 20);
  const auto m = crsd::build(a, crsd::CrsdConfig{.mrows = 32});
  const index_t n = a.num_rows();
  Rng rng(2);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.next_double(-1, 1);
  SolveOptions opts;
  opts.max_iterations = 2000;
  opts.tolerance = 1e-10;

  std::vector<double> x_host(static_cast<std::size_t>(n), 0.0);
  const SolveResult host = conjugate_gradient<double>(
      n, [&](const double* in, double* out) { m.spmv(in, out); }, b.data(),
      x_host.data(), opts);

  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  std::vector<double> x_gpu(static_cast<std::size_t>(n), 0.0);
  const GpuSolveResult gpu =
      gpu_conjugate_gradient(dev, m, b.data(), x_gpu.data(), opts);
  ASSERT_TRUE(host.converged);
  ASSERT_TRUE(gpu.solve.converged);
  // Same arithmetic -> same trajectory (within an iteration of rounding).
  EXPECT_NEAR(gpu.solve.iterations, host.iterations, 1);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_gpu[static_cast<std::size_t>(i)],
                x_host[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(GpuCg, RejectsNonSquare) {
  Coo<double> a(4, 6);
  a.add(0, 0, 1.0);
  a.add(1, 1, 1.0);
  a.add(2, 2, 1.0);
  a.add(3, 3, 1.0);
  a.canonicalize();
  const auto m = crsd::build(a, crsd::CrsdConfig{.mrows = 32});
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  std::vector<double> b(4, 1.0), x(4, 0.0);
  EXPECT_THROW(gpu_conjugate_gradient(dev, m, b.data(), x.data()), Error);
}

}  // namespace
}  // namespace crsd::solver
