// Tests for the JIT codelet lint: generated source passes clean; textual
// mutations of the baked constants (trip counts, clamp bounds, offsets,
// interior split, pattern dispatch) are each caught by the matching
// diagnostic code; and the lint-gated factories compile clean source but
// refuse mutated source, falling back to the interpreted kernel.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "check/memcheck.hpp"
#include "codegen/crsd_gpu_jit.hpp"
#include "codegen/crsd_jit_kernel.hpp"
#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "kernels/crsd_gpu.hpp"
#include "matrix/generators.hpp"

namespace crsd::codegen {
namespace {

using check::Code;
using check::has_code;

JitCompiler fresh_compiler() {
  JitCompiler::Options opts;
  opts.cache_dir = (std::filesystem::temp_directory_path() /
                    ("crsd-lint-cache-" + std::to_string(::getpid())))
                       .string();
  return JitCompiler(opts);
}

/// 5-point stencil: one pattern {-16, -1, 0, 1, 16} with a real interior
/// range, an AD group, clamped edge offsets — every lint check has a
/// matching construct in its generated source.
CrsdMatrix<double> stencil_matrix() {
  return build(stencil_5pt_2d(16, 8), CrsdConfig{.mrows = 16});
}

/// Replaces the first occurrence of `from`; the mutation must exist in the
/// source or the fixture itself is stale.
std::string mutated(std::string src, const std::string& from,
                    const std::string& to) {
  const auto pos = src.find(from);
  EXPECT_NE(pos, std::string::npos) << "mutation anchor not found: " << from;
  if (pos == std::string::npos) return src;
  return src.replace(pos, from.size(), to);
}

TEST(CodeletLint, CleanOnGeneratedCpuSource) {
  const auto m = stencil_matrix();
  EXPECT_TRUE(lint_cpu_codelet_source(m, generate_cpu_codelet_source(m))
                  .empty());

  Rng rng(3);
  Coo<double> a = astro_convection(24, 8, 8, /*unstructured=*/false, rng);
  inject_scatter(a, 25, rng);
  const auto ms = build(a, CrsdConfig{.mrows = 16});
  EXPECT_TRUE(lint_cpu_codelet_source(ms, generate_cpu_codelet_source(ms))
                  .empty());

  const auto mf =
      build(dense_band(96, 3).cast<float>(), CrsdConfig{.mrows = 16});
  EXPECT_TRUE(lint_cpu_codelet_source(mf, generate_cpu_codelet_source(mf))
                  .empty());
}

TEST(CodeletLint, CleanOnGeneratedGpuSource) {
  const auto m = stencil_matrix();
  EXPECT_TRUE(lint_gpu_codelet_source(m, generate_gpu_codelet_source(m))
                  .empty());
  GpuCodeletOptions no_local;
  no_local.use_local_memory = false;
  EXPECT_TRUE(
      lint_gpu_codelet_source(m, generate_gpu_codelet_source(m, no_local))
          .empty());
}

TEST(CodeletLint, FlagsMissingEntryPoint) {
  const auto m = stencil_matrix();
  const std::string src =
      mutated(generate_cpu_codelet_source(m),
              "extern \"C\" void crsd_codelet_scatter(",
              "extern \"C\" void crsd_codelet_scatter2(");
  EXPECT_TRUE(has_code(lint_cpu_codelet_source(m, src),
                       Code::kLintMissingSymbol));
}

TEST(CodeletLint, FlagsWrongLaneTripCount) {
  const auto m = stencil_matrix();
  // Interior lane loops bake mrows (16) as the literal trip count.
  const std::string src =
      mutated(generate_cpu_codelet_source(m),
              "for (std::int32_t lane = 0; lane < 16; ++lane)",
              "for (std::int32_t lane = 0; lane < 15; ++lane)");
  EXPECT_TRUE(has_code(lint_cpu_codelet_source(m, src),
                       Code::kLintTripCount));
}

TEST(CodeletLint, FlagsWrongColumnClampBound) {
  const auto m = stencil_matrix();  // num_cols 128 -> clamp hi 127
  const std::string src = mutated(generate_cpu_codelet_source(m),
                                  ", 0, 127)", ", 0, 126)");
  EXPECT_TRUE(has_code(lint_cpu_codelet_source(m, src),
                       Code::kLintBakedOffset));
}

TEST(CodeletLint, FlagsBakedOffsetThatIsNoLiveDiagonal) {
  const auto m = stencil_matrix();
  // The NAD diagonal at -16 appears unclamped in the interior as
  // xx[lane - 16]; shifting it to -17 reads a diagonal the pattern does
  // not own.
  const std::string src = mutated(generate_cpu_codelet_source(m),
                                  "xx[lane - 16]", "xx[lane - 17]");
  EXPECT_TRUE(has_code(lint_cpu_codelet_source(m, src),
                       Code::kLintBakedOffset));
}

TEST(CodeletLint, FlagsStagedWindowStartingOffALiveDiagonal) {
  const auto m = stencil_matrix();
  // AD group {-1, 0, 1}: the staged window copy starts at the group's
  // first offset, xbuf[i] = xx[i + -1].
  const std::string src = mutated(generate_cpu_codelet_source(m),
                                  "xx[i + -1]", "xx[i + -3]");
  EXPECT_TRUE(has_code(lint_cpu_codelet_source(m, src),
                       Code::kLintBakedOffset));
}

TEST(CodeletLint, FlagsWrongInteriorSplit) {
  const auto m = stencil_matrix();
  // Pattern 1 is the interior pattern; the edge patterns have empty
  // interiors and emit no split at all.
  const SegmentInterior in = m.interior_segments(1);
  ASSERT_LT(in.begin, in.end) << "fixture needs a non-empty interior";
  const std::string anchor =
      "i0 = crsd_clampi(" + std::to_string(in.begin) + ", g0, g1)";
  const std::string wrong =
      "i0 = crsd_clampi(" + std::to_string(in.begin + 1) + ", g0, g1)";
  const std::string src =
      mutated(generate_cpu_codelet_source(m), anchor, wrong);
  EXPECT_TRUE(has_code(lint_cpu_codelet_source(m, src),
                       Code::kLintInteriorSplit));
}

TEST(CodeletLint, FlagsWrongSegmentBound) {
  const auto m = stencil_matrix();  // 8 segments, one pattern
  const std::string src = mutated(generate_cpu_codelet_source(m),
                                  "g1 = seg_end < 8", "g1 = seg_end < 9");
  EXPECT_TRUE(has_code(lint_cpu_codelet_source(m, src),
                       Code::kLintPatternDispatch));
}

TEST(CodeletLint, FlagsMissingPatternMarker) {
  const auto m = stencil_matrix();
  const std::string src = mutated(generate_cpu_codelet_source(m),
                                  "// pattern 0:", "// pattern zero:");
  EXPECT_TRUE(has_code(lint_cpu_codelet_source(m, src),
                       Code::kLintPatternDispatch));
}

TEST(CodeletLint, FlagsWrongGpuDispatchBound) {
  const auto m = stencil_matrix();
  // The stencil splits into top-edge/interior/bottom-edge patterns; the
  // interior pattern 1 dispatches on the cumulative bound 7.
  const std::string src =
      mutated(generate_gpu_codelet_source(m),
              "if (group_id < 7) {  // pattern 1:",
              "if (group_id < 9) {  // pattern 1:");
  EXPECT_TRUE(has_code(lint_gpu_codelet_source(m, src),
                       Code::kLintPatternDispatch));
}

TEST(CodeletLint, FlagsWrongGpuLaneArrayExtent) {
  const auto m = stencil_matrix();
  const std::string src = mutated(generate_gpu_codelet_source(m),
                                  "T sums[16] = {};", "T sums[8] = {};");
  EXPECT_TRUE(has_code(lint_gpu_codelet_source(m, src),
                       Code::kLintTripCount));
}

TEST(CodeletLint, FlagsMissingGpuEntryPoint) {
  const auto m = stencil_matrix();
  const std::string src =
      mutated(generate_gpu_codelet_source(m),
              "extern \"C\" void crsd_gpu_codelet_group(",
              "extern \"C\" void crsd_gpu_codelet_group2(");
  EXPECT_TRUE(has_code(lint_gpu_codelet_source(m, src),
                       Code::kLintMissingSymbol));
}

TEST(CodeletLint, DiagnosticsCarrySourceLineNumbers) {
  const auto m = stencil_matrix();
  const std::string src = mutated(generate_cpu_codelet_source(m),
                                  ", 0, 127)", ", 0, 126)");
  const auto diags = lint_cpu_codelet_source(m, src);
  ASSERT_FALSE(diags.empty());
  EXPECT_GT(diags.front().offset, 0);  // 1-based line of the finding
}

TEST(CheckedJit, RejectsMutatedSourceWithoutCompiling) {
  const auto m = stencil_matrix();
  JitCompiler compiler = fresh_compiler();
  // Lint rejection happens before any compiler invocation, so this path
  // needs no working toolchain.
  const std::string bad = mutated(generate_cpu_codelet_source(m),
                                  ", 0, 127)", ", 0, 126)");
  EXPECT_FALSE(make_jit_kernel(m, compiler, Checked::kYes, &bad).has_value());
  EXPECT_EQ(compiler.compilations(), 0);

  const std::string bad_gpu =
      mutated(generate_gpu_codelet_source(m),
              "if (group_id < 7) {  // pattern 1:",
              "if (group_id < 9) {  // pattern 1:");
  EXPECT_FALSE(
      make_gpu_jit_kernel(m, compiler, {}, Checked::kYes, &bad_gpu).has_value());
  EXPECT_EQ(compiler.compilations(), 0);
}

TEST(CheckedJit, CleanSourceCompilesAndMatchesScalar) {
  if (!JitCompiler::compiler_available()) GTEST_SKIP();
  const auto m = stencil_matrix();
  JitCompiler compiler = fresh_compiler();
  auto kernel = make_jit_kernel(m, compiler);
  ASSERT_TRUE(kernel.has_value());

  Rng rng(7);
  std::vector<double> x(static_cast<std::size_t>(m.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  std::vector<double> want(static_cast<std::size_t>(m.num_rows()), 0.0);
  std::vector<double> got = want;
  m.spmv_scalar(x.data(), want.data());
  kernel->spmv(m, x.data(), got.data());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-12) << i;
  }
}

TEST(CheckedJit, CleanGpuSourceRunsUnderTheChecker) {
  if (!JitCompiler::compiler_available()) GTEST_SKIP();
  // The GPU kernel requires mrows to be a wavefront multiple (32 on the
  // simulated Tesla C2050), so this fixture uses a wider segment height.
  const auto m = build(stencil_5pt_2d(16, 8), CrsdConfig{.mrows = 32});
  JitCompiler compiler = fresh_compiler();
  auto kernel = make_gpu_jit_kernel(m, compiler);
  ASSERT_TRUE(kernel.has_value());

  Rng rng(13);
  std::vector<double> x(static_cast<std::size_t>(m.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  std::vector<double> want(static_cast<std::size_t>(m.num_rows()), 0.0);
  std::vector<double> got = want;
  m.spmv_scalar(x.data(), want.data());

  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  check::MemChecker chk(dev.spec());
  kernel->run(dev, m, x.data(), got.data(), /*pool=*/nullptr, &chk);
  EXPECT_TRUE(chk.clean()) << chk.report();
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-12) << i;
  }
}

// --- Storage-mode rules: f16 decoder routing, delta byte-range guard. ----

CrsdMatrix<double> compact_matrix(ValuePrecision vp, bool narrow, bool delta) {
  Rng rng(3);
  Coo<double> a = astro_convection(24, 8, 8, /*unstructured=*/false, rng);
  inject_scatter(a, 25, rng);
  CrsdConfig cfg;
  cfg.mrows = 16;
  cfg.storage = {vp, narrow, delta};
  return build(a, cfg);
}

TEST(CodeletLint, CleanOnCompactStorageModes) {
  for (const StorageOptions s :
       {StorageOptions{ValuePrecision::kFloat16, true, false},
        StorageOptions{ValuePrecision::kNative, false, true},
        StorageOptions{ValuePrecision::kFloat32, false, true}}) {
    const auto m = compact_matrix(s.value_precision, s.narrow_scatter_indices,
                                  s.delta_scatter_indices);
    const auto diags =
        lint_cpu_codelet_source(m, generate_cpu_codelet_source(m));
    EXPECT_TRUE(diags.empty()) << check::format_diagnostics(diags);
  }
}

TEST(CodeletLint, FlagsHalfDecoderBypass) {
  const auto m = compact_matrix(ValuePrecision::kFloat16, true, false);
  // Drop the decode on one value load: the accumulation would multiply the
  // raw binary16 bit pattern.
  const std::string src = mutated(generate_cpu_codelet_source(m),
                                  "crsd_h2f(unit[", "(unit[");
  EXPECT_TRUE(has_code(lint_cpu_codelet_source(m, src),
                       Code::kLintHalfDecoder));
}

TEST(CodeletLint, FlagsMissingHalfDecoder) {
  const auto m = compact_matrix(ValuePrecision::kFloat16, true, false);
  const std::string src =
      mutated(generate_cpu_codelet_source(m),
              "static inline float crsd_h2f(VT h)",
              "static inline float crsd_h2f_off(VT h)");
  EXPECT_TRUE(has_code(lint_cpu_codelet_source(m, src),
                       Code::kLintHalfDecoder));
}

TEST(CodeletLint, FlagsUnguardedVarintContinuationLoop) {
  const auto m = compact_matrix(ValuePrecision::kNative, false, true);
  // Strip the byte-range guard from the continuation loop: a truncated
  // stream would read past the row's range.
  const std::string src =
      mutated(generate_cpu_codelet_source(m),
              "while ((byte & 0x80u) && pos < end);",
              "while (byte & 0x80u);");
  const auto diags = lint_cpu_codelet_source(m, src);
  EXPECT_TRUE(has_code(diags, Code::kLintDeltaGuard))
      << check::format_diagnostics(diags);
}

TEST(CodeletLint, FlagsMissingDeltaByteRange) {
  const auto m = compact_matrix(ValuePrecision::kNative, false, true);
  const std::string src =
      mutated(generate_cpu_codelet_source(m),
              "const std::int32_t end = row_bytes[i + 1];",
              "const std::int32_t end = 2147483647;");
  EXPECT_TRUE(has_code(lint_cpu_codelet_source(m, src),
                       Code::kLintDeltaGuard));
}

TEST(CheckedJit, RejectsMutatedCompactSourceWithoutCompiling) {
  const auto m = compact_matrix(ValuePrecision::kFloat16, true, false);
  JitCompiler compiler = fresh_compiler();
  const std::string bad = mutated(generate_cpu_codelet_source(m),
                                  "crsd_h2f(unit[", "(unit[");
  EXPECT_FALSE(make_jit_kernel(m, compiler, Checked::kYes, &bad).has_value());
  EXPECT_EQ(compiler.compilations(), 0);
}

TEST(CheckedJit, CleanCompactSourceCompilesAndMatchesScalar) {
  if (!JitCompiler::compiler_available()) GTEST_SKIP();
  const auto m = compact_matrix(ValuePrecision::kFloat32, false, true);
  JitCompiler compiler = fresh_compiler();
  auto kernel = make_jit_kernel(m, compiler);
  ASSERT_TRUE(kernel.has_value());

  Rng rng(7);
  std::vector<double> x(static_cast<std::size_t>(m.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  std::vector<double> want(static_cast<std::size_t>(m.num_rows()), 0.0);
  std::vector<double> got = want;
  m.spmv_scalar(x.data(), want.data());
  kernel->spmv(m, x.data(), got.data());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-12) << i;
  }
}

}  // namespace
}  // namespace crsd::codegen
