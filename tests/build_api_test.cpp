// Facade-parity suite for the unified build API: crsd::build must produce
// bitwise-identical storage to the legacy build_crsd overloads (via
// check::validate_same_storage) across every storage mode and thread count,
// the CrsdConfig bridge conversion must keep designated-initializer call
// sites working, and tune_from_cache must adopt a cached autotune winner —
// construction knobs only, the caller's storage/threads stay — with zero
// measured trials. The legacy overloads themselves are exercised under a
// deprecation-warning pragma; everything else in the tree is ported.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "check/validate.hpp"
#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "kernels/crsd_autotune.hpp"
#include "matrix/generators.hpp"

namespace crsd {
namespace {

namespace fs = std::filesystem;

Coo<double> mixed_matrix(std::uint64_t seed = 5) {
  Rng rng(seed);
  auto a = broken_diagonals(
      900, {{-96, 0.55, 4}, {-1, 1.0, 1}, {0, 1.0, 1}, {1, 0.9, 2},
            {96, 0.6, 5}},
      rng);
  inject_scatter(a, 70, rng);
  return a;
}

std::vector<StorageOptions> all_modes() {
  return {
      {},  // fp64, raw int32 scatter columns
      {ValuePrecision::kNative, true, false},
      {ValuePrecision::kNative, false, true},
      {ValuePrecision::kFloat32, true, false},
      {ValuePrecision::kFloat32, false, true},
      {ValuePrecision::kFloat16, true, false},
  };
}

std::string mode_name(const StorageOptions& s) {
  return std::string(value_precision_name(s.value_precision)) +
         (s.delta_scatter_indices ? "+delta"
                                  : (s.narrow_scatter_indices ? "+i16" : ""));
}

// The legacy entry points under test are deprecated on purpose; this suite
// is the one in-tree caller allowed to reach them.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
CrsdMatrix<double> legacy_build(const Coo<double>& a, const CrsdConfig& cfg,
                                ThreadPool* pool = nullptr) {
  return build_crsd(a, cfg, pool);
}
#pragma GCC diagnostic pop

TEST(BuildApiParity, MatchesLegacyBuilderBitwiseAcrossStorageModes) {
  const auto a = mixed_matrix();
  for (const StorageOptions& mode : all_modes()) {
    CrsdConfig cfg;
    cfg.mrows = 64;
    cfg.storage = mode;
    const auto legacy = legacy_build(a, cfg);
    const auto unified = build(a, BuildOptions{cfg});
    EXPECT_TRUE(check::validate_same_storage(unified, legacy).empty())
        << "mode " << mode_name(mode);
  }
}

TEST(BuildApiParity, MatchesLegacyParallelBuilderBitwise) {
  const auto a = mixed_matrix();
  for (int threads : {2, 4}) {
    CrsdConfig cfg;
    cfg.mrows = 32;
    cfg.threads = threads;
    ThreadPool pool(threads);
    const auto legacy = legacy_build(a, cfg, &pool);
    const auto unified = build(a, cfg, &pool);
    EXPECT_TRUE(check::validate_same_storage(unified, legacy).empty())
        << threads << " threads";
  }
}

TEST(BuildApiParity, DefaultOptionsMatchDefaultLegacyBuild) {
  const auto a = mixed_matrix();
  const auto legacy = legacy_build(a, CrsdConfig{});
  const auto unified = build(a);
  EXPECT_TRUE(check::validate_same_storage(unified, legacy).empty());
}

TEST(BuildApiBridge, CrsdConfigConvertsImplicitly) {
  const auto a = mixed_matrix();
  // The designated-initializer call shape every ported site uses.
  const auto m = build(a, CrsdConfig{.mrows = 32});
  EXPECT_EQ(m.mrows(), 32);
  EXPECT_EQ(m.nnz(), a.nnz());

  BuildOptions opts = CrsdConfig{.mrows = 128};
  EXPECT_EQ(opts.config.mrows, 128);
}

TEST(BuildApiTuning, AdoptsCachedAutotuneWinner) {
  const auto a = mixed_matrix();
  const fs::path dir =
      fs::temp_directory_path() /
      ("crsd-build-api-test-" + std::to_string(static_cast<unsigned>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);

  gpusim::Device dev{gpusim::DeviceSpec{}};
  kernels::AutotuneOptions topts;
  topts.cache_dir = dir.string();
  const auto tuned = kernels::autotune_crsd(dev, a, {}, topts);
  ASSERT_GT(tuned.measured_trials, 0);

  BuildOptions opts;
  opts.tune_from_cache = true;
  opts.device = dev.spec();
  opts.cache_dir = dir.string();
  opts.config.threads = 3;
  ThreadPool pool(3);
  const auto m = build(a, opts, &pool);
  EXPECT_EQ(m.mrows(), tuned.best_config.mrows) << tuned.summary();

  // The cached winner must reproduce exactly what building with its config
  // produces — cache adoption changes which knobs are used, not the build.
  CrsdConfig direct_cfg = tuned.best_config;
  direct_cfg.threads = 3;
  const auto direct = build(a, direct_cfg, &pool);
  EXPECT_TRUE(check::validate_same_storage(m, direct).empty());
}

TEST(BuildApiTuning, ColdCacheFallsBackToCallerConfig) {
  const auto a = mixed_matrix();
  const fs::path dir =
      fs::temp_directory_path() /
      ("crsd-build-api-cold-" + std::to_string(static_cast<unsigned>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);

  BuildOptions opts = CrsdConfig{.mrows = 32};
  opts.tune_from_cache = true;
  opts.cache_dir = dir.string();
  const auto m = build(a, opts);
  const auto pinned = build(a, CrsdConfig{.mrows = 32});
  EXPECT_TRUE(check::validate_same_storage(m, pinned).empty());
}

}  // namespace
}  // namespace crsd
