// Additional coverage: CRSD GPU kernel across device presets and segment
// sizes, simulator corner cases, sweep-cost model properties, and spy/
// reorder helpers under unusual inputs.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "kernels/gpu_spmv.hpp"
#include "matrix/generators.hpp"
#include "matrix/reorder.hpp"
#include "matrix/spy.hpp"
#include "perf/cpu_model.hpp"

namespace crsd {
namespace {

using gpusim::DeviceSpec;

// ---------------------------------------------------------------------------
// Device x mrows correctness sweep.

struct DeviceMrowsCase {
  const char* device;
  index_t mrows;
};

class DeviceMrowsSweep : public ::testing::TestWithParam<DeviceMrowsCase> {};

DeviceSpec spec_by_name(const std::string& name) {
  if (name == "c2050") return DeviceSpec::tesla_c2050();
  if (name == "gtx280") return DeviceSpec::geforce_gtx280();
  return DeviceSpec::amd_cypress();
}

TEST_P(DeviceMrowsSweep, CrsdKernelCorrectOnEveryDevice) {
  const auto& param = GetParam();
  const DeviceSpec spec = spec_by_name(param.device);
  if (param.mrows % spec.wavefront_size != 0) {
    GTEST_SKIP() << "mrows not a wavefront multiple on this device";
  }
  Rng rng(1);
  const auto a = astro_convection(9, 9, 6, true, rng);
  const auto m = build(a, CrsdConfig{.mrows = param.mrows});
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<double> want(static_cast<std::size_t>(a.num_rows()));
  std::vector<double> got(want.size(), -1);
  a.spmv_reference(x.data(), want.data());
  gpusim::Device dev(spec);
  const auto r = kernels::gpu_spmv_crsd(dev, m, x.data(), got.data());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-12) << i;
  }
  EXPECT_GT(r.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeviceMrowsSweep,
    ::testing::Values(DeviceMrowsCase{"c2050", 32}, DeviceMrowsCase{"c2050", 64},
                      DeviceMrowsCase{"c2050", 256},
                      DeviceMrowsCase{"gtx280", 64},
                      DeviceMrowsCase{"gtx280", 128},
                      DeviceMrowsCase{"cypress", 64},
                      DeviceMrowsCase{"cypress", 128},
                      DeviceMrowsCase{"cypress", 256}),
    [](const auto& suite_info) {
      return std::string(suite_info.param.device) + "_mrows" +
             std::to_string(suite_info.param.mrows);
    });

// ---------------------------------------------------------------------------
// Simulator corner cases.

TEST(SimCorners, GatherWithZeroLanesIsNoop) {
  gpusim::Device dev(DeviceSpec::tesla_c2050());
  const gpusim::Buffer buf = dev.alloc(1024);
  gpusim::LaunchConfig cfg;
  cfg.num_groups = 1;
  cfg.group_size = 32;
  const auto r = gpusim::launch(dev, cfg, [&](gpusim::WorkGroupCtx& ctx) {
    ctx.global_gather(buf, nullptr, 0, 8, true);
    ctx.global_read_block(buf, 0, 0, 8);
  });
  EXPECT_EQ(r.counters.global_load_transactions, 0u);
}

TEST(SimCorners, ZeroLaunchOverheadWhenFused) {
  const DeviceSpec spec = DeviceSpec::tesla_c2050();
  gpusim::Counters c;
  c.wavefronts = 1;
  gpusim::LaunchConfig cfg;
  cfg.num_groups = 1;
  cfg.group_size = 32;
  cfg.launches = 0;  // tail fused into a previous launch
  const double t0 = gpusim::estimate_seconds(spec, c, cfg);
  cfg.launches = 1;
  const double t1 = gpusim::estimate_seconds(spec, c, cfg);
  EXPECT_NEAR(t1 - t0, spec.launch_overhead_seconds, 1e-12);
}

TEST(SimCorners, WideWavefrontCoalescesMore) {
  // The same 64-lane contiguous double read: 32-wide wavefronts need two
  // instructions of 2 transactions each; a 64-wide wavefront issues one
  // instruction of 4 transactions. Totals agree; per-instruction grouping
  // differs. Verify via a strided pattern where width matters: lanes read
  // every other element, so a 64-wide wave covers twice the span.
  DeviceSpec narrow = DeviceSpec::tesla_c2050();
  DeviceSpec wide = DeviceSpec::amd_cypress();
  auto run = [](const DeviceSpec& spec) {
    gpusim::Device dev(spec);
    const gpusim::Buffer buf = dev.alloc(1 << 20);
    gpusim::LaunchConfig cfg;
    cfg.num_groups = 1;
    cfg.group_size = 64;
    return gpusim::launch(dev, cfg, [&](gpusim::WorkGroupCtx& ctx) {
             std::vector<size64_t> idx(64);
             for (int i = 0; i < 64; ++i) {
               idx[static_cast<std::size_t>(i)] =
                   static_cast<size64_t>(i) * 2;
             }
             ctx.global_gather(buf, idx.data(), 64, 8, false);
           })
        .counters.global_load_transactions;
  };
  // 64 lanes x stride-2 doubles span 1024 B = 8 segments either way.
  EXPECT_EQ(run(narrow), 8u);
  EXPECT_EQ(run(wide), 8u);
}

TEST(SimCorners, DeviceMemoryPressureAccumulatesAcrossKernels) {
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  spec.global_mem_bytes = 1 << 20;
  gpusim::Device dev(spec);
  const auto a = dense_band(4096, 2);  // values alone ~160 KB as double
  const auto m = CsrMatrix<double>::from_coo(a);
  std::vector<double> x(4096, 1.0), y(4096);
  // First call allocates and frees; repeated calls must not leak budget.
  for (int i = 0; i < 3; ++i) {
    kernels::gpu_spmv_csr_vector(dev, m, x.data(), y.data());
    EXPECT_EQ(dev.allocated_bytes(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Sweep-cost model properties.

TEST(SweepCost, CrsdCostGrowsWithFill) {
  Rng rng(2);
  const auto a = broken_diagonals(4096, {{7, 0.5, 4}, {-2, 0.9, 2}}, rng);
  CrsdConfig tight;
  tight.mrows = 32;
  tight.fill_max_gap_segments = 0;
  CrsdConfig loose;
  loose.mrows = 32;
  loose.fill_max_gap_segments = 64;  // bridge everything
  const auto st_tight = build(a, tight).stats();
  const auto st_loose = build(a, loose).stats();
  const auto c_tight = perf::crsd_sweep_cost(st_tight, a.num_rows(), 8);
  const auto c_loose = perf::crsd_sweep_cost(st_loose, a.num_rows(), 8);
  EXPECT_GE(st_loose.dia_slots, st_tight.dia_slots);
  EXPECT_GE(c_loose.bytes, c_tight.bytes);
}

TEST(SweepCost, DiaExplodesWithDiagonalCount) {
  StructureStats narrow;
  narrow.num_rows = narrow.num_cols = 100000;
  narrow.nnz = 700000;
  narrow.diagonals.resize(7);
  StructureStats scattered = narrow;
  scattered.diagonals.resize(700);
  EXPECT_GT(perf::dia_sweep_cost(scattered, 8).bytes,
            50 * perf::dia_sweep_cost(narrow, 8).bytes);
}

// ---------------------------------------------------------------------------
// Helpers under unusual inputs.

TEST(SpyExtra, TinyAndWideMatrices) {
  Coo<double> tiny(1, 1);
  tiny.add(0, 0, 1.0);
  tiny.canonicalize();
  EXPECT_NE(spy_string(tiny, 4).find('#'), std::string::npos);

  Coo<double> wide(2, 500);
  wide.add(0, 0, 1.0);
  wide.add(1, 499, 1.0);
  wide.canonicalize();
  const std::string s = spy_string(wide, 20);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2 + 2);  // frame + 2 rows
  EXPECT_THROW(spy_string(wide, 1), Error);
}

TEST(ReorderExtra, IdentityOnAlreadyBandedMatrix) {
  const auto band = dense_band(128, 2);
  const Permutation p = reverse_cuthill_mckee(band);
  const auto b = permute_symmetric(band, p);
  // RCM cannot do worse than the existing band.
  EXPECT_LE(matrix_bandwidth(b), matrix_bandwidth(band));
}

TEST(ReorderExtra, PermuteVectorAgreesWithDefinition) {
  Permutation p{{3, 1, 0, 2}};
  const std::vector<double> x = {10, 11, 12, 13};
  const auto px = permute_vector(x, p);
  EXPECT_EQ(px, (std::vector<double>{13, 11, 10, 12}));
}

TEST(ReorderExtra, RejectsRectangularAndMismatched) {
  Coo<double> rect(3, 4);
  rect.add(0, 0, 1.0);
  rect.canonicalize();
  EXPECT_THROW(reverse_cuthill_mckee(rect), Error);
  Coo<double> sq(3, 3);
  sq.add(0, 0, 1.0);
  sq.canonicalize();
  EXPECT_THROW(permute_symmetric(sq, Permutation{{0, 1}}), Error);
}

}  // namespace
}  // namespace crsd
