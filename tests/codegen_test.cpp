// Tests for the runtime code generator and JIT driver: generated-source
// structure (Fig. 6 markers), compiled-codelet numerics vs reference,
// cache behaviour, and error paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>

#include "codegen/crsd_jit_kernel.hpp"
#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"

namespace crsd::codegen {
namespace {

// Per-test-binary JIT cache so tests never collide with a user's cache.
JitCompiler fresh_compiler() {
  JitCompiler::Options opts;
  opts.cache_dir = (std::filesystem::temp_directory_path() /
                    ("crsd-test-cache-" + std::to_string(::getpid())))
                       .string();
  return JitCompiler(opts);
}

Coo<double> fig2_matrix() {
  Coo<double> a(6, 9);
  auto v = [](index_t r, index_t c) { return 10.0 * r + c + 1.0; };
  for (index_t r : {0, 1}) {
    for (diag_offset_t off : {0, 2, 3, 5, 7}) a.add(r, r + off, v(r, r + off));
  }
  for (index_t r : {2, 3, 4, 5}) {
    a.add(r, r - 2, v(r, r - 2));
    if (r != 4) a.add(r, r - 1, v(r, r - 1));
    a.add(r, r + 2, v(r, r + 2));
  }
  a.add(5, 5, v(5, 5));
  a.canonicalize();
  return a;
}

TEST(CpuCodeletSource, ContainsUnrolledDiagonalsAndConstants) {
  const auto m = build(fig2_matrix(), CrsdConfig{.mrows = 2});
  const std::string src = generate_cpu_codelet_source(m);
  // Index information baked in: pattern ranges, slot strides, offsets.
  EXPECT_NE(src.find("crsd_codelet_diag"), std::string::npos);
  EXPECT_NE(src.find("crsd_codelet_scatter"), std::string::npos);
  EXPECT_NE(src.find("pattern 0: {(NAD,1),(AD,2),(NAD,2)}"),
            std::string::npos);
  EXPECT_NE(src.find("pattern 1: {(AD,2),(NAD,1)}"), std::string::npos);
  // Unrolled lines with immediate offsets (x[r + 2], x[r - 2], ...).
  EXPECT_NE(src.find("* x["), std::string::npos);
  EXPECT_NE(src.find("unit[lane + 0]"), std::string::npos);
  // No index arrays are referenced in the diagonal phase.
  EXPECT_EQ(src.find("crsd_dia_index"), std::string::npos);
}

TEST(CpuCodeletSource, EmptyScatterGeneratesNoLoop) {
  const auto a = dense_band(128, 2);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  ASSERT_EQ(m.num_scatter_rows(), 0);
  const std::string src = generate_cpu_codelet_source(m);
  EXPECT_NE(src.find("_scatter"), std::string::npos);
  EXPECT_EQ(src.find("scatter_rowno[i]"), std::string::npos);
}

TEST(OpenClSource, Fig6StructureMarkers) {
  const auto m = build(fig2_matrix(), CrsdConfig{.mrows = 2});
  const std::string src = generate_opencl_kernel_source(m);
  EXPECT_NE(src.find("__kernel void crsd_spmv"), std::string::npos);
  EXPECT_NE(src.find("get_group_id(0)"), std::string::npos);
  EXPECT_NE(src.find("switch ("), std::string::npos);
  EXPECT_NE(src.find("case 0:"), std::string::npos);
  EXPECT_NE(src.find("case 1:"), std::string::npos);
  // AD groups are staged through local memory behind barriers.
  EXPECT_NE(src.find("__local"), std::string::npos);
  EXPECT_NE(src.find("barrier(CLK_LOCAL_MEM_FENCE);"), std::string::npos);
  EXPECT_NE(src.find("xbuf[local_id + 1]"), std::string::npos);
  // Scatter tail present and double-precision pragma enabled.
  EXPECT_NE(src.find("scatter_rowno[sid]"), std::string::npos);
  EXPECT_NE(src.find("cl_khr_fp64"), std::string::npos);
}

TEST(OpenClSource, NoLocalMemoryVariantHasNoBarriers) {
  const auto m = build(fig2_matrix(), CrsdConfig{.mrows = 2});
  OpenClCodeletOptions opts;
  opts.use_local_memory = false;
  const std::string src = generate_opencl_kernel_source(m, opts);
  EXPECT_EQ(src.find("barrier("), std::string::npos);
}

TEST(OpenClSource, FloatVariantSkipsFp64Pragma) {
  const auto a = fig2_matrix().cast<float>();
  const auto m = build(a, CrsdConfig{.mrows = 2});
  const std::string src = generate_opencl_kernel_source(m);
  EXPECT_EQ(src.find("cl_khr_fp64"), std::string::npos);
  EXPECT_NE(src.find("float sum"), std::string::npos);
}

TEST(Jit, CompilerIsAvailableInThisEnvironment) {
  // The whole point of this reproduction is runtime codegen; the test
  // environment must provide a compiler.
  EXPECT_TRUE(JitCompiler::compiler_available());
}

TEST(Jit, CompileLoadRunFig2) {
  const auto a = fig2_matrix();
  const auto m = build(a, CrsdConfig{.mrows = 2});
  JitCompiler compiler = fresh_compiler();
  const CrsdJitKernel<double> kernel(m, compiler);
  std::vector<double> x(9), want(6), got(6, -1.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.3 * double(i) - 1.0;
  a.spmv_reference(x.data(), want.data());
  kernel.spmv(m, x.data(), got.data());
  for (int i = 0; i < 6; ++i) EXPECT_NEAR(got[i], want[i], 1e-12) << i;
}

TEST(Jit, DiskCacheHitsOnSecondBuild) {
  const auto a = dense_band(256, 3);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  JitCompiler compiler = fresh_compiler();
  const CrsdJitKernel<double> k1(m, compiler);
  EXPECT_EQ(compiler.compilations(), 1);
  EXPECT_EQ(compiler.cache_hits(), 0);
  const CrsdJitKernel<double> k2(m, compiler);
  EXPECT_EQ(compiler.compilations(), 1);
  EXPECT_EQ(compiler.cache_hits(), 1);
  EXPECT_EQ(k1.source(), k2.source());
}

TEST(Jit, CompileErrorCarriesDiagnostics) {
  JitCompiler compiler = fresh_compiler();
  try {
    compiler.compile_and_load("this is not C++\n");
    FAIL() << "expected crsd::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("JIT compilation failed"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("error"), std::string::npos);
  }
}

TEST(Jit, MissingSymbolThrows) {
  JitCompiler compiler = fresh_compiler();
  JitLibrary lib =
      compiler.compile_and_load("extern \"C\" int crsd_answer() { return 42; }\n");
  auto fn = lib.symbol_as<int (*)()>("crsd_answer");
  EXPECT_EQ(fn(), 42);
  EXPECT_THROW(lib.symbol("nope_not_here"), Error);
}

class JitSuiteMatrices : public ::testing::TestWithParam<int> {};

TEST_P(JitSuiteMatrices, CompiledCodeletMatchesInterpreted) {
  const auto& spec = paper_matrix(GetParam());
  const auto a = spec.generate(0.02);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  JitCompiler compiler = fresh_compiler();
  const CrsdJitKernel<double> kernel(m, compiler);
  Rng rng(40);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<double> interp(static_cast<std::size_t>(a.num_rows())),
      jit(static_cast<std::size_t>(a.num_rows()), -1.0),
      jit_par(static_cast<std::size_t>(a.num_rows()), -1.0);
  m.spmv(x.data(), interp.data());
  kernel.spmv(m, x.data(), jit.data());
  ThreadPool pool(4);
  kernel.spmv_parallel(pool, m, x.data(), jit_par.data());
  for (std::size_t i = 0; i < interp.size(); ++i) {
    // Identical accumulation order -> bitwise equality.
    EXPECT_EQ(jit[i], interp[i]) << "row " << i;
    EXPECT_EQ(jit_par[i], interp[i]) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, JitSuiteMatrices,
                         ::testing::Values(3, 5, 9, 18, 21),
                         [](const auto& suite_info) {
                           return paper_matrix(suite_info.param).name;
                         });

TEST(Jit, SinglePrecisionCodelet) {
  Rng rng(41);
  const auto a = astro_convection(8, 8, 5, true, rng).cast<float>();
  const auto m = build(a, CrsdConfig{.mrows = 32});
  JitCompiler compiler = fresh_compiler();
  const CrsdJitKernel<float> kernel(m, compiler);
  EXPECT_NE(kernel.source().find("using T = float;"), std::string::npos);
  std::vector<float> x(static_cast<std::size_t>(a.num_cols()), 0.5f);
  std::vector<float> want(static_cast<std::size_t>(a.num_rows())),
      got(static_cast<std::size_t>(a.num_rows()));
  m.spmv(x.data(), want.data());
  kernel.spmv(m, x.data(), got.data());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

}  // namespace
}  // namespace crsd::codegen
