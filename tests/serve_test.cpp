// Serving-engine semantics: bitwise parity of coalesced SpMM batches vs
// per-request single-vector SpMV across every storage mode, admission
// control, registry dedup, the batch-verification mutation fixture, and
// async-mode concurrency (the suite name contains "Serve" so the TSan CI
// job runs it).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/build_api.hpp"
#include "matrix/generators.hpp"
#include "obs/metrics.hpp"
#include "serve/serve.hpp"

namespace crsd {
namespace {

using serve::MatrixInfo;
using serve::RequestStatus;
using serve::ServeEngine;
using serve::ServeOptions;

struct StorageMode {
  const char* name;
  StorageOptions storage;
};

const std::vector<StorageMode>& storage_modes() {
  static const std::vector<StorageMode> m = {
      {"fp64", {}},
      {"fp64+i16", {ValuePrecision::kNative, true, false}},
      {"fp64+delta", {ValuePrecision::kNative, false, true}},
      {"fp32+i16", {ValuePrecision::kFloat32, true, false}},
      {"fp32+delta", {ValuePrecision::kFloat32, false, true}},
      {"fp16+i16", {ValuePrecision::kFloat16, true, false}},
  };
  return m;
}

/// A band matrix with off-pattern scatter points, so the narrow/delta
/// scatter index modes actually have a scatter stream to encode.
Coo<double> test_matrix() {
  Rng rng(7);
  Coo<double> a = dense_band(96, 4);
  inject_scatter(a, 40, rng);
  return a;
}

std::vector<double> make_x(index_t n, int seed) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        1.0 + 0.001 * double((i * 31 + seed * 17) % 97);
  }
  return x;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(Serve, CoalescedMatchesPerRequestAllStorageModes) {
  ThreadPool pool(2);
  const Coo<double> a = test_matrix();
  for (const StorageMode& mode : storage_modes()) {
    SCOPED_TRACE(mode.name);
    ServeEngine engine(pool, ServeOptions{.max_batch = 8});
    const MatrixInfo info = engine.register_matrix(a, mode.storage);
    const bool native =
        mode.storage.value_precision == ValuePrecision::kNative;
    EXPECT_EQ(info.batchable, native);

    std::vector<serve::RequestHandle> handles;
    for (int r = 0; r < 8; ++r) {
      handles.push_back(engine.submit(info.id, "tenant0",
                                      make_x(a.num_cols(), r)));
    }
    const serve::DispatchStats stats = engine.drain();
    EXPECT_EQ(stats.requests, 8);
    if (native) {
      // One k=8 SpMM batch.
      EXPECT_EQ(stats.batches, 1);
      EXPECT_EQ(stats.coalesced_requests, 8);
    } else {
      // Compacted value streams have no SpMM engine: per-request fallback
      // inside the same graph.
      EXPECT_EQ(stats.batches, 0);
      EXPECT_EQ(stats.singles, 8);
    }
    EXPECT_GT(stats.makespan_seconds, 0.0);

    const CrsdMatrix<double>& m = engine.matrix(info.id);
    for (int r = 0; r < 8; ++r) {
      ASSERT_EQ(handles[static_cast<std::size_t>(r)].status(),
                RequestStatus::kDone);
      EXPECT_EQ(handles[static_cast<std::size_t>(r)].served_batch_k(),
                native ? 8 : 1);
      EXPECT_GT(
          handles[static_cast<std::size_t>(r)].virtual_finish_seconds(),
          0.0);
      const std::vector<double> x = make_x(a.num_cols(), r);
      std::vector<double> ref(static_cast<std::size_t>(a.num_rows()));
      m.spmv(x.data(), ref.data());
      EXPECT_TRUE(
          bitwise_equal(handles[static_cast<std::size_t>(r)].result(), ref));
    }
  }
}

TEST(Serve, BackpressureRejectsWithDiagnostic) {
  ThreadPool pool(2);
  ServeEngine engine(pool,
                     ServeOptions{.max_batch = 8, .max_queue_depth = 4});
  const Coo<double> a = test_matrix();
  const MatrixInfo info = engine.register_matrix(a);

  std::vector<serve::RequestHandle> admitted, shed;
  for (int r = 0; r < 6; ++r) {
    serve::RequestHandle h =
        engine.submit(info.id, "tenantB", make_x(a.num_cols(), r));
    (r < 4 ? admitted : shed).push_back(std::move(h));
  }
  EXPECT_EQ(engine.pending(), 4u);
  for (const auto& h : shed) {
    ASSERT_EQ(h.status(), RequestStatus::kRejected);  // resolved immediately
    const check::Diagnostic& d = h.diagnostic();
    EXPECT_EQ(d.code, check::Code::kServeOverload);
    EXPECT_NE(d.message.find("high watermark"), std::string::npos);
    EXPECT_EQ(h.virtual_finish_seconds(), 0.0);
  }

  const serve::DispatchStats stats = engine.drain();
  EXPECT_EQ(stats.requests, 4);
  for (const auto& h : admitted) {
    EXPECT_EQ(h.status(), RequestStatus::kDone);
  }
  // The queue drained: new submissions are admitted again.
  serve::RequestHandle h2 =
      engine.submit(info.id, "tenantB", make_x(a.num_cols(), 9));
  EXPECT_EQ(h2.status(), RequestStatus::kPending);
  engine.drain();
  EXPECT_EQ(h2.status(), RequestStatus::kDone);
}

TEST(Serve, RegistryDedupsByStructureHash) {
  ThreadPool pool(1);
  ServeEngine engine(pool);
  const Coo<double> a = test_matrix();

  const MatrixInfo first = engine.register_matrix(a);
  EXPECT_FALSE(first.dedup_hit);
  EXPECT_NE(first.structure_hash, 0u);
  EXPECT_EQ(engine.registry_size(), 1u);

  // Same matrix, same storage: reuses the entry.
  const MatrixInfo again = engine.register_matrix(a);
  EXPECT_TRUE(again.dedup_hit);
  EXPECT_EQ(again.id, first.id);
  EXPECT_EQ(again.structure_hash, first.structure_hash);
  EXPECT_EQ(engine.registry_size(), 1u);

  // Same structure, different storage mode: its own entry (the built
  // streams differ), but the structure hash matches.
  const MatrixInfo narrow = engine.register_matrix(
      a, StorageOptions{ValuePrecision::kNative, true, false});
  EXPECT_FALSE(narrow.dedup_hit);
  EXPECT_NE(narrow.id, first.id);
  EXPECT_EQ(narrow.structure_hash, first.structure_hash);

  // Same structure, different values: its own entry too.
  Coo<double> b(a.num_rows(), a.num_cols());
  for (size64_t k = 0; k < a.nnz(); ++k) {
    b.add(a.row_indices()[k], a.col_indices()[k], 2.0 * a.values()[k]);
  }
  b.canonicalize();
  const MatrixInfo other = engine.register_matrix(b);
  EXPECT_FALSE(other.dedup_hit);
  EXPECT_NE(other.id, first.id);
  EXPECT_EQ(other.structure_hash, first.structure_hash);
  EXPECT_EQ(engine.registry_size(), 3u);
}

TEST(Serve, MisSlicedBatchDetected) {
  ThreadPool pool(2);
  ServeEngine engine(pool,
                     ServeOptions{.max_batch = 4, .verify_batches = true});
  const Coo<double> a = test_matrix();
  const MatrixInfo info = engine.register_matrix(a);

  engine.inject_batch_fault_for_test();
  std::vector<serve::RequestHandle> handles;
  for (int r = 0; r < 4; ++r) {
    handles.push_back(
        engine.submit(info.id, "tenantC", make_x(a.num_cols(), r)));
  }
  engine.drain();
  for (const auto& h : handles) {
    ASSERT_EQ(h.status(), RequestStatus::kFailed);
    const check::Diagnostic& d = h.diagnostic();
    EXPECT_EQ(d.code, check::Code::kServeBatchMismatch);
    EXPECT_NE(d.message.find("diverged bitwise"), std::string::npos);
  }

  // Verification passes again once the fault is consumed.
  serve::RequestHandle ok =
      engine.submit(info.id, "tenantC", make_x(a.num_cols(), 5));
  engine.drain();
  EXPECT_EQ(ok.status(), RequestStatus::kDone);
}

TEST(Serve, PartialBatchesAndDispatchStats) {
  ThreadPool pool(2);
  // One exec lane: compute nodes serialize, so the makespan bounds below
  // (>= total compute, < fully serialized sum) hold exactly.
  ServeEngine engine(pool, ServeOptions{.max_batch = 4, .exec_lanes = 1});
  const Coo<double> a = test_matrix();
  const MatrixInfo info = engine.register_matrix(a);

  // 9 pending requests with max_batch 4: two k=4 batches and one single.
  std::vector<serve::RequestHandle> handles;
  for (int r = 0; r < 9; ++r) {
    handles.push_back(
        engine.submit(info.id, "tenantD", make_x(a.num_cols(), r)));
  }
  const serve::DispatchStats stats = engine.drain();
  EXPECT_EQ(stats.requests, 9);
  EXPECT_EQ(stats.batches, 2);
  EXPECT_EQ(stats.singles, 1);
  EXPECT_EQ(stats.coalesced_requests, 8);
  EXPECT_GT(stats.compute_seconds, 0.0);
  EXPECT_GT(stats.stage_seconds, 0.0);
  EXPECT_GT(stats.deliver_seconds, 0.0);
  // The virtual timeline pipelines stages, so the makespan is at least the
  // compute time but less than the serialized sum.
  EXPECT_GE(stats.makespan_seconds, stats.compute_seconds);
  EXPECT_LT(stats.makespan_seconds, stats.stage_seconds +
                                        stats.compute_seconds +
                                        stats.deliver_seconds +
                                        1e-12);
  const CrsdMatrix<double>& m = engine.matrix(info.id);
  for (int r = 0; r < 9; ++r) {
    const std::vector<double> x = make_x(a.num_cols(), r);
    std::vector<double> ref(static_cast<std::size_t>(a.num_rows()));
    m.spmv(x.data(), ref.data());
    EXPECT_TRUE(
        bitwise_equal(handles[static_cast<std::size_t>(r)].result(), ref));
  }
}

TEST(Serve, JitSingleVectorFallbackParity) {
  ThreadPool pool(2);
  // max_batch 1 = coalescing off: every request takes the single-vector
  // path, JIT-compiled when a toolchain is available (bitwise-identical
  // either way on native storage).
  ServeEngine engine(pool, ServeOptions{.max_batch = 1, .use_jit = true});
  const Coo<double> a = test_matrix();
  const MatrixInfo info = engine.register_matrix(a);

  std::vector<serve::RequestHandle> handles;
  for (int r = 0; r < 3; ++r) {
    handles.push_back(
        engine.submit(info.id, "tenantE", make_x(a.num_cols(), r)));
  }
  const serve::DispatchStats stats = engine.drain();
  EXPECT_EQ(stats.batches, 0);
  EXPECT_EQ(stats.singles, 3);
  const CrsdMatrix<double>& m = engine.matrix(info.id);
  for (int r = 0; r < 3; ++r) {
    const std::vector<double> x = make_x(a.num_cols(), r);
    std::vector<double> ref(static_cast<std::size_t>(a.num_rows()));
    m.spmv(x.data(), ref.data());
    ASSERT_EQ(handles[static_cast<std::size_t>(r)].status(),
              RequestStatus::kDone);
    EXPECT_EQ(handles[static_cast<std::size_t>(r)].served_batch_k(), 1);
    EXPECT_TRUE(
        bitwise_equal(handles[static_cast<std::size_t>(r)].result(), ref));
  }
}

TEST(Serve, TenantLatencyMetricsExported) {
  obs::Registry& reg = obs::Registry::global();
  obs::Histogram& h = reg.histogram("serve.tenant.serve_test_slo.latency_us");
  h.reset();

  ThreadPool pool(2);
  ServeEngine engine(pool);
  const Coo<double> a = test_matrix();
  const MatrixInfo info = engine.register_matrix(a);
  for (int r = 0; r < 6; ++r) {
    engine.submit(info.id, "serve_test_slo", make_x(a.num_cols(), r));
  }
  engine.drain();

  EXPECT_EQ(h.count(), 6u);
  // p50/p99 gauges update on every resolution and are quantiles of the
  // histogram above.
  const double p50 = reg.gauge("serve.tenant.serve_test_slo.p50_us").value();
  const double p99 = reg.gauge("serve.tenant.serve_test_slo.p99_us").value();
  EXPECT_GE(p99, p50);
  EXPECT_EQ(p50, h.quantile(0.50));
  EXPECT_EQ(p99, h.quantile(0.99));
}

TEST(Serve, AsyncConcurrentSubmittersCoalesce) {
  ThreadPool pool(4);
  ServeEngine engine(pool, ServeOptions{.max_batch = 8,
                                        .max_queue_depth = 1024,
                                        .coalescing_window_us = 20000,
                                        .async = true});
  const Coo<double> a = test_matrix();
  const MatrixInfo info = engine.register_matrix(a);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::vector<serve::RequestHandle>> handles(kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int r = 0; r < kPerThread; ++r) {
        handles[static_cast<std::size_t>(t)].push_back(engine.submit(
            info.id, "tenant" + std::to_string(t),
            make_x(a.num_cols(), t * kPerThread + r)));
      }
    });
  }
  for (auto& th : submitters) th.join();

  const CrsdMatrix<double>& m = engine.matrix(info.id);
  index_t coalesced = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kPerThread; ++r) {
      serve::RequestHandle& h =
          handles[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)];
      h.wait();
      ASSERT_EQ(h.status(), RequestStatus::kDone);
      if (h.served_batch_k() >= 2) ++coalesced;
      const std::vector<double> x =
          make_x(a.num_cols(), t * kPerThread + r);
      std::vector<double> ref(static_cast<std::size_t>(a.num_rows()));
      m.spmv(x.data(), ref.data());
      EXPECT_TRUE(bitwise_equal(h.result(), ref));
    }
  }
  // 32 near-simultaneous requests against one matrix within a 20ms window:
  // most must have been served inside SpMM batches. (Exact batch shapes
  // depend on arrival interleaving; the parity above is the hard gate.)
  EXPECT_GE(coalesced, 16);
}

TEST(Serve, AsyncSingleRequestFallsBackWithinWindow) {
  ThreadPool pool(2);
  ServeEngine engine(pool, ServeOptions{.max_batch = 8,
                                        .coalescing_window_us = 1000,
                                        .async = true});
  const Coo<double> a = test_matrix();
  const MatrixInfo info = engine.register_matrix(a);

  // One lone request: no batch can form, so after the bounded window it is
  // served on the single-vector urgent path.
  serve::RequestHandle h =
      engine.submit(info.id, "tenantF", make_x(a.num_cols(), 3));
  h.wait();
  ASSERT_EQ(h.status(), RequestStatus::kDone);
  EXPECT_EQ(h.served_batch_k(), 1);
  EXPECT_GT(h.virtual_finish_seconds(), 0.0);

  const CrsdMatrix<double>& m = engine.matrix(info.id);
  const std::vector<double> x = make_x(a.num_cols(), 3);
  std::vector<double> ref(static_cast<std::size_t>(a.num_rows()));
  m.spmv(x.data(), ref.data());
  EXPECT_TRUE(bitwise_equal(h.result(), ref));
}

}  // namespace
}  // namespace crsd
