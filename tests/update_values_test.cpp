// Tests for the inspector/executor value-refresh path (update_values) and
// the parallel DCSR kernel added alongside it.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "codegen/crsd_jit_kernel.hpp"
#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "core/update.hpp"
#include "formats/dcsr.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"

namespace crsd {
namespace {

Coo<double> rescaled(const Coo<double>& a, double factor, double shift) {
  Coo<double> out(a.num_rows(), a.num_cols());
  out.reserve(a.nnz());
  for (size64_t k = 0; k < a.nnz(); ++k) {
    out.add(a.row_indices()[k], a.col_indices()[k],
            a.values()[k] * factor + shift);
  }
  out.mark_canonical();
  return out;
}

TEST(UpdateValues, RefreshedMatrixComputesNewProduct) {
  Rng rng(1);
  auto a = astro_convection(8, 8, 6, true, rng);
  auto m = build(a, CrsdConfig{.mrows = 32});
  const auto a2 = rescaled(a, -2.5, 0.125);
  update_values(m, a2);

  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<double> want(static_cast<std::size_t>(a.num_rows()));
  std::vector<double> got(want.size(), -1);
  a2.spmv_reference(x.data(), want.data());
  m.spmv(x.data(), got.data());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-12) << i;
  }
}

TEST(UpdateValues, KeepsCompiledCodeletValid) {
  // The codelet is specialized to structure, not values: after a value
  // refresh the same compiled kernel must compute the new product.
  const auto a = stencil_5pt_2d(16, 16);
  auto m = build(a, CrsdConfig{.mrows = 32});
  codegen::JitCompiler::Options jopts;
  jopts.cache_dir = (std::filesystem::temp_directory_path() /
                     ("crsd-upd-" + std::to_string(::getpid())))
                        .string();
  codegen::JitCompiler compiler(jopts);
  const codegen::CrsdJitKernel<double> kernel(m, compiler);

  const auto a2 = rescaled(a, 3.0, 0.0);
  update_values(m, a2);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> want(static_cast<std::size_t>(a.num_rows()));
  std::vector<double> got(want.size());
  a2.spmv_reference(x.data(), want.data());
  kernel.spmv(m, x.data(), got.data());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-12);
  }
}

TEST(UpdateValues, ScatterRowsRefreshedToo) {
  Rng rng(2);
  auto a = dense_band(256, 2);
  inject_scatter(a, 30, rng);
  auto m = build(a, CrsdConfig{.mrows = 32});
  ASSERT_GT(m.num_scatter_rows(), 0);
  const auto a2 = rescaled(a, 0.5, -1.0);
  update_values(m, a2);
  std::vector<double> x(256, 1.0), want(256), got(256);
  a2.spmv_reference(x.data(), want.data());
  m.spmv(x.data(), got.data());
  for (int i = 0; i < 256; ++i) EXPECT_NEAR(got[i], want[i], 1e-12);
}

TEST(UpdateValues, RejectsStructureChanges) {
  const auto a = dense_band(128, 2);
  auto m = build(a, CrsdConfig{.mrows = 32});

  // Different nnz count.
  Coo<double> fewer(128, 128);
  for (index_t i = 0; i < 128; ++i) fewer.add(i, i, 1.0);
  fewer.canonicalize();
  EXPECT_THROW(update_values(m, fewer), Error);

  // Same count, one entry moved off-structure.
  Coo<double> moved(128, 128);
  const auto& rows = a.row_indices();
  const auto& cols = a.col_indices();
  for (size64_t k = 0; k < a.nnz(); ++k) {
    if (k == 0) {
      moved.add(0, 100, 1.0);  // offset 100 does not exist in the band
    } else {
      moved.add(rows[k], cols[k], 1.0);
    }
  }
  moved.canonicalize();
  ASSERT_EQ(moved.nnz(), a.nnz());
  EXPECT_THROW(update_values(m, moved), Error);

  // Dimension mismatch.
  Coo<double> small(64, 64);
  small.add(0, 0, 1.0);
  small.canonicalize();
  EXPECT_THROW(update_values(m, small), Error);
}

TEST(UpdateValues, SuiteMatrixRoundTrip) {
  const auto a = paper_matrix(18).generate(0.02);
  auto m = build(a, CrsdConfig{.mrows = 64});
  // Updating with the original values is a no-op.
  const auto dia_before = m.dia_values();
  update_values(m, a);
  EXPECT_EQ(m.dia_values(), dia_before);
}

TEST(DcsrParallel, MatchesSerial) {
  Rng rng(3);
  auto a = dense_band(1024, 5);
  inject_scatter(a, 100, rng);
  const auto m = DcsrMatrix<double>::from_coo(a);
  std::vector<double> x(1024);
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<double> serial(1024), parallel(1024, -1);
  m.spmv(x.data(), serial.data());
  ThreadPool pool(4);
  m.spmv_parallel(pool, x.data(), parallel.data());
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace crsd
