// Cross-module integration tests: the full pipeline (generator -> stats ->
// formats -> simulated GPU -> counters -> timing), counter-consistency
// invariants, Matrix Market file round trips, and an end-to-end solve with
// a JIT codelet built from a file-loaded matrix.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "codegen/crsd_jit_kernel.hpp"
#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "core/inspect.hpp"
#include "kernels/gpu_spmv.hpp"
#include "matrix/generators.hpp"
#include "matrix/matrix_market.hpp"
#include "matrix/paper_suite.hpp"
#include "solver/solvers.hpp"

namespace crsd {
namespace {

namespace fs = std::filesystem;

TEST(Integration, CounterInvariantsHoldAcrossFormats) {
  const auto a = paper_matrix(18).generate(0.03);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  for (Format f : {Format::kCsr, Format::kDia, Format::kEll, Format::kHyb,
                   Format::kCrsd}) {
    gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
    const auto r = kernels::spmv(dev, f, a, x.data(), y.data());
    const auto& c = r.counters;
    // Transaction and byte counters are coupled by the 128 B granule.
    EXPECT_EQ(c.global_load_bytes, c.global_load_transactions * 128u)
        << format_name(f);
    EXPECT_EQ(c.global_store_bytes, c.global_store_transactions * 128u)
        << format_name(f);
    // Every format performs exactly 2*nnz useful flops.
    EXPECT_EQ(c.flops, 2 * a.nnz()) << format_name(f);
    // y is written at least once: stores cover the result vector.
    EXPECT_GE(c.global_store_bytes,
              static_cast<size64_t>(a.num_rows()) * sizeof(double))
        << format_name(f);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(c.wavefronts, 0u);
  }
}

TEST(Integration, CrsdMovesFewerBytesThanIndexCarryingFormats) {
  // The paper's index-traffic argument, end to end: CRSD's generated
  // codelet loads no per-element column indices, so its traffic undercuts
  // every index-carrying format (CSR/ELL/HYB). DIA is excluded — on a
  // fully-dense-diagonal matrix like kim2 DIA is also index-free and
  // byte-optimal; CRSD's win over DIA comes on *scattered* diagonals
  // (covered by kernels_gpu_test).
  const auto a = paper_matrix(10).generate(0.02);  // kim2-like
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  size64_t crsd_bytes = 0, best_indexed = ~size64_t{0};
  for (Format f :
       {Format::kCsr, Format::kEll, Format::kHyb, Format::kCrsd}) {
    gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
    const auto r = kernels::spmv(dev, f, a, x.data(), y.data());
    const size64_t bytes = r.counters.total_global_bytes();
    if (f == Format::kCrsd) {
      crsd_bytes = bytes;
    } else {
      best_indexed = std::min(best_indexed, bytes);
    }
  }
  EXPECT_LT(crsd_bytes, best_indexed);
}

TEST(Integration, MatrixMarketFileRoundTripThroughCrsd) {
  const fs::path path = fs::temp_directory_path() /
                        ("crsd-it-" + std::to_string(::getpid()) + ".mtx");
  Rng rng(3);
  auto original = broken_diagonals(
      600, {{4, 0.6, 2}, {-11, 0.8, 3}, {1, 1.0, 1}}, rng);
  inject_scatter(original, 15, rng);
  write_matrix_market_file(path.string(), original);

  const Coo<double> loaded = read_matrix_market_file(path.string());
  fs::remove(path);
  ASSERT_EQ(loaded.nnz(), original.nnz());

  // CRSD built from the file reconstructs the file's matrix exactly.
  const auto m = build(loaded, CrsdConfig{.mrows = 32});
  const Coo<double> back = crsd_to_coo(m);
  EXPECT_EQ(back.row_indices(), original.row_indices());
  EXPECT_EQ(back.col_indices(), original.col_indices());
  for (size64_t k = 0; k < original.nnz(); ++k) {
    EXPECT_DOUBLE_EQ(back.values()[k], original.values()[k]);
  }
}

TEST(Integration, ReadMissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/nope.mtx"), Error);
}

TEST(Integration, SolverOverJitKernelFromGeneratedSuiteMatrix) {
  // ecology-style diffusion system (nonsymmetric after the generator's
  // random couplings), solved with BiCGSTAB over the compiled codelet —
  // generator, builder, codegen, JIT, and solver in one path.
  auto a = paper_matrix(5).generate(0.004);
  make_diagonally_dominant(a, 0.5);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  codegen::JitCompiler::Options jopts;
  jopts.cache_dir =
      (fs::temp_directory_path() /
       ("crsd-it-cache-" + std::to_string(::getpid()))).string();
  codegen::JitCompiler compiler(jopts);
  const codegen::CrsdJitKernel<double> kernel(m, compiler);

  const index_t n = a.num_rows();
  std::vector<double> x_star(static_cast<std::size_t>(n), 1.0);
  std::vector<double> b(static_cast<std::size_t>(n));
  a.spmv_reference(x_star.data(), b.data());
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  solver::SolveOptions opts;
  opts.max_iterations = 3000;
  opts.tolerance = 1e-11;
  const auto result = solver::bicgstab<double>(
      n, [&](const double* in, double* out) { kernel.spmv(m, in, out); },
      b.data(), x.data(), opts);
  EXPECT_TRUE(result.converged);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], 1.0, 1e-6);
  }
}

TEST(Integration, GpuResultsIdenticalAcrossRepeatRuns) {
  // The simulator must be deterministic: identical counters and identical y
  // run to run, with and without a thread pool.
  const auto a = paper_matrix(21).generate(0.02);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y1(static_cast<std::size_t>(a.num_rows()));
  std::vector<double> y2(y1.size());
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  const auto r1 = kernels::spmv(dev, Format::kCrsd, a, x.data(), y1.data());
  ThreadPool pool(3);
  kernels::SpmvOptions opts2;
  opts2.crsd_config = CrsdConfig{};
  const auto r2 = kernels::spmv(dev, Format::kCrsd, a, x.data(), y2.data(),
                                opts2, &pool);
  EXPECT_EQ(y1, y2);
  EXPECT_EQ(r1.counters.global_load_transactions,
            r2.counters.global_load_transactions);
  EXPECT_EQ(r1.counters.cache_hits, r2.counters.cache_hits);
  EXPECT_DOUBLE_EQ(r1.seconds, r2.seconds);
}

}  // namespace
}  // namespace crsd
