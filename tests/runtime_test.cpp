// Task-graph runtime suite: queue ordering, virtual-timeline determinism,
// futures/callbacks, cycle rejection (explicit and queue-order induced),
// error propagation, and overlap-efficiency accounting. Suite names contain
// "TaskGraph" so the TSan CI job picks them up via its -R filter.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "check/diagnostics.hpp"
#include "common/thread_pool.hpp"
#include "runtime/task_graph.hpp"

namespace crsd::rt {
namespace {

TEST(TaskGraph, QueueRunsNodesInSubmissionOrder) {
  TaskGraph g;
  const QueueId q = g.add_queue("dev0.compute");
  std::mutex mu;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    g.add_node(NodeKind::kLaunch, q, "n" + std::to_string(i), [&mu, &order, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      return 1e-6;
    });
  }
  ThreadPool pool(4);
  GraphExecutor exec(pool, g);
  exec.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TaskGraph, VirtualTimelineIsDeterministic) {
  // Two-queue pipeline: h2d feeds each launch. The virtual clocks must give
  // textbook pipelining regardless of real thread interleaving: copies and
  // launches overlap, each launch starts at max(queue clock, its copy's
  // finish).
  TaskGraph g;
  const QueueId h2d = g.add_queue("h2d");
  const QueueId compute = g.add_queue("compute");
  std::vector<NodeId> copies, launches;
  for (int i = 0; i < 3; ++i) {
    copies.push_back(g.add_node(NodeKind::kH2D, h2d,
                                "copy" + std::to_string(i),
                                [] { return 1.0; }));
    launches.push_back(g.add_node(NodeKind::kLaunch, compute,
                                  "launch" + std::to_string(i),
                                  [] { return 2.0; }));
    g.add_edge(copies.back(), launches.back());
  }

  for (int rep = 0; rep < 3; ++rep) {
    ThreadPool pool(rep + 1);  // different worker counts, same timeline
    GraphExecutor exec(pool, g);
    const GraphRunStats stats = exec.run();
    // copy i finishes at i+1; launch 0 spans [1,3), launch 1 [3,5),
    // launch 2 [5,7).
    EXPECT_DOUBLE_EQ(stats.nodes[static_cast<std::size_t>(copies[2])]
                         .finish_seconds, 3.0);
    EXPECT_DOUBLE_EQ(stats.nodes[static_cast<std::size_t>(launches[0])]
                         .start_seconds, 1.0);
    EXPECT_DOUBLE_EQ(stats.nodes[static_cast<std::size_t>(launches[2])]
                         .start_seconds, 5.0);
    EXPECT_DOUBLE_EQ(stats.makespan_seconds, 7.0);
    // Overlap: busiest engine (compute, 6s) over makespan 7s.
    EXPECT_DOUBLE_EQ(stats.queue_busy_seconds[static_cast<std::size_t>(
                         compute)], 6.0);
    EXPECT_NEAR(stats.overlap_efficiency(), 6.0 / 7.0, 1e-12);
  }
}

TEST(TaskGraph, EdgesEstablishHappensBefore) {
  // A cross-queue producer/consumer chain: each consumer must observe the
  // producer's write. Run many times; TSan (CI) checks the synchronization.
  for (int rep = 0; rep < 20; ++rep) {
    TaskGraph g;
    const QueueId qa = g.add_queue("a");
    const QueueId qb = g.add_queue("b");
    int value = 0;
    const NodeId produce = g.add_node(NodeKind::kCpuCompute, qa, "produce",
                                      [&value] {
                                        value = 42;
                                        return 1e-6;
                                      });
    int seen = 0;
    const NodeId consume = g.add_node(NodeKind::kCpuCompute, qb, "consume",
                                      [&value, &seen] {
                                        seen = value;
                                        return 1e-6;
                                      });
    g.add_edge(produce, consume);
    ThreadPool pool(4);
    GraphExecutor exec(pool, g);
    exec.run();
    EXPECT_EQ(seen, 42);
  }
}

TEST(TaskGraph, FuturesAndCallbacksFire) {
  TaskGraph g;
  const QueueId q = g.add_queue("q");
  const NodeId a = g.add_node(NodeKind::kCpuCompute, q, "a", [] { return 1.5; });
  const NodeId b = g.add_node(NodeKind::kCpuCompute, q, "b", [] { return 0.5; });
  g.add_edge(a, b);
  std::atomic<int> callbacks{0};
  g.on_complete(b, [&callbacks](NodeId n) {
    EXPECT_EQ(n, 1);
    callbacks.fetch_add(1);
  });

  ThreadPool pool(2);
  GraphExecutor exec(pool, g);
  NodeFuture fa = exec.future(a);
  NodeFuture fb = exec.future(b);
  EXPECT_FALSE(fa.done());
  const GraphRunStats stats = exec.run();
  fa.wait();
  fb.wait();
  EXPECT_TRUE(fa.done());
  EXPECT_TRUE(fa.executed());
  EXPECT_DOUBLE_EQ(fa.finish_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(fb.finish_seconds(), 2.0);
  EXPECT_EQ(callbacks.load(), 1);
  EXPECT_DOUBLE_EQ(stats.makespan_seconds, 2.0);
}

TEST(TaskGraph, BodylessNodesAreInstantaneous) {
  TaskGraph g;
  const QueueId q = g.add_queue("q");
  const NodeId a = g.add_node(NodeKind::kLaunch, q, "work", [] { return 3.0; });
  const NodeId done = g.add_node(NodeKind::kBarrier, q, "done");
  g.add_edge(a, done);
  ThreadPool pool(1);
  GraphExecutor exec(pool, g);
  const GraphRunStats stats = exec.run();
  EXPECT_DOUBLE_EQ(stats.nodes[static_cast<std::size_t>(done)].start_seconds,
                   3.0);
  EXPECT_DOUBLE_EQ(stats.makespan_seconds, 3.0);
}

TEST(TaskGraph, ExplicitCycleIsRejected) {
  TaskGraph g;
  const QueueId q0 = g.add_queue("q0");
  const QueueId q1 = g.add_queue("q1");
  const NodeId a = g.add_node(NodeKind::kLaunch, q0, "a", [] { return 1.0; });
  const NodeId b = g.add_node(NodeKind::kLaunch, q1, "b", [] { return 1.0; });
  g.add_edge(a, b);
  g.add_edge(b, a);
  const auto diags = g.validate();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, check::Code::kGraphCycle);
  EXPECT_THROW(g.validate_or_throw(), check::DiagnosticError);
  ThreadPool pool(2);
  GraphExecutor exec(pool, g);
  EXPECT_THROW(exec.run(), check::DiagnosticError);
}

TEST(TaskGraph, QueueOrderCycleIsRejected) {
  // The explicit edges are acyclic (b -> a), but a precedes b on their
  // shared in-order queue, so a can never start: the implicit queue edge
  // a -> b closes a cycle the validator must catch.
  TaskGraph g;
  const QueueId q = g.add_queue("q");
  const NodeId a = g.add_node(NodeKind::kLaunch, q, "a", [] { return 1.0; });
  const NodeId b = g.add_node(NodeKind::kLaunch, q, "b", [] { return 1.0; });
  g.add_edge(b, a);
  const auto diags = g.validate();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, check::Code::kGraphCycle);
  EXPECT_NE(diags[0].message.find("a"), std::string::npos);
}

TEST(TaskGraph, AcyclicGraphValidates) {
  TaskGraph g;
  const QueueId q0 = g.add_queue("q0");
  const QueueId q1 = g.add_queue("q1");
  const NodeId a = g.add_node(NodeKind::kH2D, q0, "a", [] { return 1.0; });
  const NodeId b = g.add_node(NodeKind::kLaunch, q1, "b", [] { return 1.0; });
  const NodeId c = g.add_node(NodeKind::kD2H, q0, "c", [] { return 1.0; });
  g.add_edge(a, b);
  g.add_edge(b, c);
  EXPECT_TRUE(g.validate().empty());
}

TEST(TaskGraph, BodyErrorAbortsRunAndSkipsUnstarted) {
  TaskGraph g;
  const QueueId q = g.add_queue("q");
  const NodeId bad = g.add_node(NodeKind::kCpuCompute, q, "bad", []() -> double {
    throw std::runtime_error("node failed");
  });
  std::atomic<bool> ran_after{false};
  const NodeId after = g.add_node(NodeKind::kCpuCompute, q, "after",
                                  [&ran_after] {
                                    ran_after.store(true);
                                    return 1.0;
                                  });
  g.add_edge(bad, after);

  ThreadPool pool(2);
  GraphExecutor exec(pool, g);
  NodeFuture f = exec.future(after);
  EXPECT_THROW(exec.run(), std::runtime_error);
  // The dependent node was abandoned, and its future resolved anyway.
  EXPECT_FALSE(ran_after.load());
  f.wait();
  EXPECT_TRUE(f.done());
  EXPECT_FALSE(f.executed());
}

TEST(TaskGraph, ManyNodesManyQueuesStress) {
  // Wide fan-out with cross-queue edges; checks completion, the per-node
  // records, and the nodes-executed metric under real contention.
  TaskGraph g;
  constexpr int kQueues = 6;
  constexpr int kPerQueue = 40;
  std::vector<QueueId> queues;
  for (int q = 0; q < kQueues; ++q) {
    queues.push_back(g.add_queue("q" + std::to_string(q)));
  }
  std::atomic<int> executed{0};
  NodeId prev = -1;
  for (int i = 0; i < kQueues * kPerQueue; ++i) {
    const NodeId n = g.add_node(NodeKind::kCpuCompute, queues[static_cast<std::size_t>(i % kQueues)],
                                "n" + std::to_string(i), [&executed] {
                                  executed.fetch_add(1);
                                  return 1e-7;
                                });
    if (i % 7 == 0 && prev >= 0) g.add_edge(prev, n);
    prev = n;
  }
  ThreadPool pool(8);
  GraphExecutor exec(pool, g);
  const GraphRunStats stats = exec.run();
  EXPECT_EQ(executed.load(), kQueues * kPerQueue);
  for (const NodeRun& r : stats.nodes) {
    EXPECT_TRUE(r.executed);
    EXPECT_GE(r.finish_seconds, r.start_seconds);
  }
}

}  // namespace
}  // namespace crsd::rt
