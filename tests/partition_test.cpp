// Row-region partitioner tests: planner validity/determinism on partially
// diagonal matrices, the single-region collapse on uniform structure, the
// partitioned container's CPU/executor parity with the COO reference,
// partition mutation fixtures (overlapping regions, non-covering regions, a
// lying per-region mrows descriptor), the persistent partition cache's
// warm-run contract, and the partitioned launch-model extraction. Suite
// names contain "Partition" so the TSan CI job picks them up via -R.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <vector>

#include "analysis/launch_model.hpp"
#include "common/rng.hpp"
#include "kernels/partitioned_spmv.hpp"
#include "matrix/generators.hpp"

namespace crsd {
namespace {

namespace fs = std::filesystem;

/// Diagonal-dominant top stripe (tridiagonal) over an irregular
/// scattered-row bottom stripe — the partially diagonal shape one global
/// format handles badly: CRSD pays scatter-ELL max-width padding for the
/// bottom rows, CSR forfeits the top stripe's diagonal locality.
Coo<double> partially_diagonal(index_t top_rows, index_t bottom_rows,
                               index_t nnz_per_bottom_row,
                               std::uint64_t seed = 7) {
  const index_t n = top_rows + bottom_rows;
  Coo<double> a(n, n);
  Rng rng(seed);
  for (index_t r = 0; r < top_rows; ++r) {
    for (diag_offset_t d : {-1, 0, 1}) {
      const index_t c = r + d;
      if (c >= 0 && c < n) a.add(r, c, 1.0 + 0.001 * double(r));
    }
  }
  for (index_t r = top_rows; r < n; ++r) {
    // Ragged widths (4 .. max): scatter-ELL pays max-width padding for the
    // whole stripe, CSR pays only the stored nonzeros.
    const index_t row_nnz =
        4 + (r * 37) % std::max<index_t>(1, nnz_per_bottom_row - 4);
    for (index_t k = 0; k < row_nnz; ++k) {
      const index_t c = static_cast<index_t>(rng.next_u64() %
                                             static_cast<std::uint64_t>(n));
      a.add(r, c, 0.5 + 0.001 * double(k));
    }
  }
  a.canonicalize();
  return a;
}

/// A scratch cache directory per test, so cache tests never see entries
/// published by other tests (or earlier runs of this one).
std::string fresh_cache_dir(const char* tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string("crsd-partition-test-") + tag + "-" +
       std::to_string(static_cast<unsigned>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(PartitionPlan, SplitsPartiallyDiagonalMatrixIntoValidRegions) {
  // A wide-spread ragged bottom (up to 160 nnz/row): scatter-ELL and ELL
  // pay max-width padding over the whole stripe, so the model hands the
  // bottom to CSR while the diagonal stripe stays CRSD.
  const auto a = partially_diagonal(4096, 1024, 160);
  const gpusim::DeviceSpec spec;  // default: wavefront 32
  const PartitionPlan plan = plan_partition(a, spec);

  ASSERT_GE(plan.regions.size(), 2u) << plan.summary();
  EXPECT_TRUE(
      validate_partition(a.num_rows(), plan.regions, spec.wavefront_size)
          .empty())
      << plan.summary();
  // The diagonal stripe stays CRSD; the scattered stripe leaves it.
  EXPECT_EQ(plan.regions.front().format, Format::kCrsd) << plan.summary();
  EXPECT_NE(plan.regions.back().format, Format::kCrsd) << plan.summary();
  // The split must be predicted to beat the single-format baseline, and the
  // serial/overlap accounting must be consistent.
  EXPECT_LT(plan.predicted_serial_seconds, plan.predicted_single_seconds);
  EXPECT_LE(plan.predicted_overlap_seconds, plan.predicted_serial_seconds);
}

TEST(PartitionPlan, IsDeterministic) {
  const auto a = partially_diagonal(2048, 1024, 16);
  const gpusim::DeviceSpec spec;
  const PartitionPlan p1 = plan_partition(a, spec);
  const PartitionPlan p2 = plan_partition(a, spec);
  EXPECT_EQ(p1.summary(), p2.summary());
  EXPECT_DOUBLE_EQ(p1.predicted_serial_seconds, p2.predicted_serial_seconds);
}

TEST(PartitionPlan, UniformDiagonalMatrixCollapsesToOneRegion) {
  // With the overlap re-split disabled, boundaries come only from format
  // changes — a uniform matrix has none.
  Rng rng(3);
  const auto a = full_diagonals(4096, {-16, -1, 0, 1, 16}, rng);
  PartitionPolicy pol;
  pol.overlap_regions = 1;
  const PartitionPlan plan = plan_partition(a, gpusim::DeviceSpec{}, pol);
  ASSERT_EQ(plan.regions.size(), 1u) << plan.summary();
  EXPECT_EQ(plan.regions.front().format, Format::kCrsd);
  EXPECT_EQ(plan.regions.front().row_begin, 0);
  EXPECT_EQ(plan.regions.front().row_end, a.num_rows());
}

TEST(PartitionPlan, UniformMatrixSplitsBalancedRegionsForOverlap) {
  // Default policy: the planner re-splits even a single-format plan into
  // overlap_regions balanced stripes so the executor's queues overlap.
  Rng rng(3);
  const auto a = full_diagonals(4096, {-16, -1, 0, 1, 16}, rng);
  const PartitionPolicy pol;
  const PartitionPlan plan = plan_partition(a, gpusim::DeviceSpec{});
  ASSERT_EQ(plan.regions.size(),
            static_cast<std::size_t>(pol.overlap_regions))
      << plan.summary();
  EXPECT_TRUE(validate_partition(a.num_rows(), plan.regions).empty());
  for (const RowRegion& r : plan.regions) {
    EXPECT_EQ(r.format, Format::kCrsd) << plan.summary();
  }
  EXPECT_LT(plan.predicted_overlap_seconds,
            plan.predicted_serial_seconds);
}

TEST(PartitionPlan, RespectsMaxRegionsAndWavefront) {
  const auto a = partially_diagonal(4096, 2048, 24);
  PartitionPolicy pol;
  pol.max_regions = 2;
  const gpusim::DeviceSpec spec;
  const PartitionPlan plan = plan_partition(a, spec, pol);
  EXPECT_LE(plan.regions.size(), 2u) << plan.summary();
  for (const RowRegion& r : plan.regions) {
    if (r.format != Format::kCrsd) continue;
    EXPECT_EQ(r.config.mrows % spec.wavefront_size, 0) << plan.summary();
  }
}

TEST(PartitionedMatrixSuite, CpuSpmvMatchesCooReference) {
  const auto a = partially_diagonal(2048, 512, 16);
  const auto m =
      PartitionedMatrix<double>::build(a, plan_partition(a, {}));
  ASSERT_GE(m.parts().size(), 1u);
  EXPECT_GT(m.footprint_bytes(), 0u);

  Rng rng(11);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  std::vector<double> got(static_cast<std::size_t>(a.num_rows()), -1.0);
  std::vector<double> want(got.size());
  m.spmv(x.data(), got.data());
  a.spmv_reference(x.data(), want.data());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-12 * (1.0 + std::abs(want[i])))
        << "row " << i;
  }
  EXPECT_TRUE(check::validate_against(m, a).empty());
}

TEST(PartitionedMatrixSuite, BuildRejectsOverlappingRegions) {
  const auto a = partially_diagonal(1024, 256, 8);
  PartitionPlan plan = plan_partition(a, {});
  ASSERT_GE(plan.regions.size(), 2u) << plan.summary();
  plan.regions[1].row_begin -= 128;  // overlap region 0
  try {
    PartitionedMatrix<double>::build(a, plan);
    FAIL() << "overlapping regions must be rejected";
  } catch (const check::DiagnosticError& e) {
    ASSERT_FALSE(e.diagnostics().empty());
    EXPECT_EQ(e.diagnostics().front().code, check::Code::kPlanPartition);
  }
}

TEST(PartitionedMatrixSuite, BuildRejectsNonCoveringRegions) {
  const auto a = partially_diagonal(1024, 256, 8);
  PartitionPlan plan = plan_partition(a, {});
  plan.regions.back().row_end -= 64;  // leave a row gap at the end
  EXPECT_THROW(PartitionedMatrix<double>::build(a, plan),
               check::DiagnosticError);
}

TEST(PartitionedMatrixSuite, ValidatorFlagsWrongPerRegionMrows) {
  const auto a = partially_diagonal(2048, 512, 16);
  auto m = PartitionedMatrix<double>::build(a, plan_partition(a, {}));
  ASSERT_TRUE(check::validate_against(m, a).empty());

  // Plant the defect: the descriptor claims an mrows the container does not
  // have. The partitioned validator must refute exactly this.
  auto& parts = m.mutable_parts();
  auto crsd_part =
      std::find_if(parts.begin(), parts.end(),
                   [](const auto& p) { return p.crsd != nullptr; });
  ASSERT_NE(crsd_part, parts.end());
  crsd_part->region.config.mrows *= 2;

  const auto diags = check::validate_against(m, a);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags.front().code, check::Code::kPlanPartition);
  EXPECT_NE(diags.front().message.find("mrows"), std::string::npos)
      << diags.front().message;
}

TEST(PartitionExecutorSuite, MatchesCpuReferenceAndOverlapsRegions) {
  const auto a = partially_diagonal(2048, 512, 16);
  BuildOptions opts;
  opts.cache_dir = fresh_cache_dir("executor");
  ThreadPool pool(4);
  const auto m = build_partitioned(a, opts, &pool);
  ASSERT_GE(m.parts().size(), 2u) << m.summary();

  Rng rng(13);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  std::vector<double> want(static_cast<std::size_t>(a.num_rows()), -1.0);
  m.spmv(x.data(), want.data());

  gpusim::Device dev{gpusim::DeviceSpec{}};
  std::vector<double> got(want.size(), -1.0);
  const auto res = kernels::spmv(dev, m, x.data(), got.data(), {}, &pool);

  // Native storage: the executor is bitwise-identical to the partitioned
  // CPU reference — each region accumulates exactly as its standalone
  // container would.
  EXPECT_EQ(got, want);
  EXPECT_GT(res.seconds, 0.0);
  ASSERT_EQ(res.region_seconds.size(), m.parts().size());
  double sum = 0.0;
  for (double s : res.region_seconds) {
    EXPECT_GT(s, 0.0);
    sum += s;
  }
  EXPECT_DOUBLE_EQ(res.serial_seconds, sum);
  // Regions overlap on the graph: the makespan cannot exceed the serial
  // schedule, and with >= 2 busy queues it must beat it.
  EXPECT_LT(res.seconds, res.serial_seconds);
  EXPECT_GE(res.overlap_speedup(), 1.0);
}

TEST(PartitionExecutorSuite, DeterministicAcrossRuns) {
  const auto a = partially_diagonal(1024, 512, 12);
  BuildOptions opts;
  opts.cache_dir = fresh_cache_dir("determinism");
  const auto m = build_partitioned(a, opts);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y1(static_cast<std::size_t>(a.num_rows()), -1.0);
  std::vector<double> y2(y1.size(), -2.0);
  gpusim::Device d1{gpusim::DeviceSpec{}};
  gpusim::Device d2{gpusim::DeviceSpec{}};
  ThreadPool pool(3);
  const auto r1 = kernels::spmv(d1, m, x.data(), y1.data());
  const auto r2 = kernels::spmv(d2, m, x.data(), y2.data(), {}, &pool);
  EXPECT_EQ(y1, y2);
  EXPECT_DOUBLE_EQ(r1.seconds, r2.seconds);
  EXPECT_DOUBLE_EQ(r1.serial_seconds, r2.serial_seconds);
}

TEST(PartitionCacheSuite, WarmRunReusesPlanWithZeroMeasuredTrials) {
  const auto a = partially_diagonal(2048, 512, 16);
  BuildOptions opts;
  opts.cache_dir = fresh_cache_dir("cache");
  const gpusim::DeviceSpec spec;

  const auto cold = kernels::plan_partition_cached(spec, a, opts);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.measured_trials, 0) << "cold run must refine mrows";

  const auto warm = kernels::plan_partition_cached(spec, a, opts);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.measured_trials, 0);
  EXPECT_EQ(warm.plan.summary(), cold.plan.summary());
  EXPECT_EQ(warm.cache_key, cold.cache_key);
}

TEST(PartitionCacheSuite, PolicyChangeKeysADifferentEntry) {
  const auto a = partially_diagonal(1024, 512, 12);
  BuildOptions opts;
  opts.cache_dir = fresh_cache_dir("cache-key");
  const gpusim::DeviceSpec spec;
  const auto base = kernels::plan_partition_cached(spec, a, opts);

  BuildOptions other = opts;
  other.partition.max_regions = 2;
  const auto changed = kernels::plan_partition_cached(spec, a, other);
  EXPECT_NE(changed.cache_key, base.cache_key);
  EXPECT_FALSE(changed.cache_hit);
}

TEST(PartitionLaunchModelSuite, ExtractsOneCrsdModelPerCrsdRegion) {
  const auto a = partially_diagonal(2048, 512, 16);
  const auto m =
      PartitionedMatrix<double>::build(a, plan_partition(a, {}));
  analysis::AnalyzeOptions opts;
  opts.spec = gpusim::DeviceSpec{};
  const auto pm = analysis::build_launch_model(m, opts);

  ASSERT_EQ(pm.regions.size(), m.parts().size());
  EXPECT_EQ(pm.num_rows, a.num_rows());
  index_t crsd_regions = 0;
  for (std::size_t i = 0; i < pm.regions.size(); ++i) {
    const auto& rm = pm.regions[i];
    EXPECT_EQ(rm.region.row_begin, m.parts()[i].region.row_begin);
    if (rm.region.format == Format::kCrsd) {
      ++crsd_regions;
      ASSERT_TRUE(rm.crsd.has_value());
      EXPECT_EQ(rm.crsd->num_rows, rm.region.row_end - rm.region.row_begin);
      EXPECT_EQ(rm.crsd->mrows, rm.region.config.mrows);
    } else {
      EXPECT_FALSE(rm.crsd.has_value());
    }
  }
  EXPECT_EQ(pm.num_crsd_regions(), crsd_regions);
  EXPECT_GE(crsd_regions, 1);
}

TEST(PartitionLaunchModelSuite, RejectsInvalidPartition) {
  const auto a = partially_diagonal(1024, 256, 8);
  auto m = PartitionedMatrix<double>::build(a, plan_partition(a, {}));
  m.mutable_parts().front().region.row_end -= 32;  // break the cover
  analysis::AnalyzeOptions opts;
  opts.spec = gpusim::DeviceSpec{};
  EXPECT_THROW(analysis::build_launch_model(m, opts),
               check::DiagnosticError);
}

}  // namespace
}  // namespace crsd
