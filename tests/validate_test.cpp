// Mutation-fixture tests for the CRSD invariant validator: every diagnostic
// class fires on a hand-broken container and stays silent on builder output.
// CRSD_VALIDATE_BUILD turns on the builder's own validation pass (normally
// debug-only) so the builder → validate_or_throw wiring is exercised even in
// a Release test binary.
#define CRSD_VALIDATE_BUILD 1

#include <gtest/gtest.h>

#include <vector>

#include "check/validate.hpp"
#include "core/build_api.hpp"
#include "matrix/generators.hpp"

namespace crsd::check {
namespace {

/// 8x8, mrows 4, one pattern {-1, 0, 1} over both segments: the smallest
/// container with padding slots at both corners. Values are nonzero exactly
/// on the in-range slots.
CrsdStorage<double> tri_fixture() {
  CrsdStorage<double> s;
  s.num_rows = 8;
  s.num_cols = 8;
  s.mrows = 4;
  DiagonalPattern pat;
  pat.start_row = 0;
  pat.num_segments = 2;
  pat.offsets = {-1, 0, 1};
  pat.groups = group_diagonals(pat.offsets);
  s.patterns.push_back(pat);
  s.dia_val.assign(2 * 3 * 4, 0.0);
  for (index_t seg = 0; seg < 2; ++seg) {
    for (index_t d = 0; d < 3; ++d) {
      for (index_t lane = 0; lane < 4; ++lane) {
        const index_t r = seg * 4 + lane;
        const index_t c = r + pat.offsets[static_cast<std::size_t>(d)];
        if (c < 0 || c >= s.num_cols) continue;
        s.dia_val[static_cast<std::size_t>(seg * 12 + d * 4 + lane)] =
            1.0 + 10.0 * r + c;
        ++s.nnz;
      }
    }
  }
  return s;
}

/// tri_fixture plus one scatter row (row 5, one entry), with row 5's
/// diagonal slots zeroed — the disjointness the builder guarantees.
CrsdStorage<double> scatter_fixture() {
  CrsdStorage<double> s = tri_fixture();
  for (index_t d = 0; d < 3; ++d) {
    // Row 5 lives in segment 1, lane 1.
    auto& v = s.dia_val[static_cast<std::size_t>(12 + d * 4 + 1)];
    if (v != 0.0) --s.nnz;
    v = 0.0;
  }
  s.scatter_rowno = {5};
  s.scatter_width = 2;
  s.scatter_col = {2, kInvalidIndex};
  s.scatter_val = {3.5, 0.0};
  ++s.nnz;
  return s;
}

TEST(Validate, CleanOnHandFixtures) {
  EXPECT_TRUE(validate(tri_fixture()).empty());
  EXPECT_TRUE(validate(scatter_fixture()).empty());
}

TEST(Validate, FlagsDegenerateDimensions) {
  CrsdStorage<double> s = tri_fixture();
  s.mrows = 0;
  EXPECT_TRUE(has_code(validate(s), Code::kSegmentCoverage));
}

TEST(Validate, FlagsWrongPatternStartRow) {
  CrsdStorage<double> s = tri_fixture();
  s.patterns[0].start_row = 4;
  EXPECT_TRUE(has_code(validate(s), Code::kSegmentCoverage));
}

TEST(Validate, FlagsSegmentUndercoverage) {
  CrsdStorage<double> s = tri_fixture();
  s.patterns[0].num_segments = 1;
  const auto diags = validate(s);
  EXPECT_TRUE(has_code(diags, Code::kSegmentCoverage));
  // The value stream no longer matches the shrunk pattern either.
  EXPECT_TRUE(has_code(diags, Code::kValueStreamLength));
}

TEST(Validate, FlagsUnsortedOffsets) {
  CrsdStorage<double> s = tri_fixture();
  std::swap(s.patterns[0].offsets[0], s.patterns[0].offsets[1]);
  EXPECT_TRUE(has_code(validate(s), Code::kOffsetOrder));
}

TEST(Validate, FlagsGroupingDisagreement) {
  CrsdStorage<double> s = tri_fixture();
  // {-1, 0, 1} is one AD group of 3; store it as a NAD group instead.
  s.patterns[0].groups = {
      DiagonalGroup{GroupType::kNonAdjacent, 3, 0}};
  EXPECT_TRUE(has_code(validate(s), Code::kGroupMismatch));
}

TEST(Validate, FlagsValueStreamLengthMismatch) {
  CrsdStorage<double> s = tri_fixture();
  s.dia_val.pop_back();
  EXPECT_TRUE(has_code(validate(s), Code::kValueStreamLength));
}

TEST(Validate, FlagsNonzeroInPaddingSlot) {
  CrsdStorage<double> s = tri_fixture();
  // Slot 0 is (row 0, offset -1): column -1, a clamped padding slot.
  ASSERT_EQ(s.dia_val[0], 0.0);
  s.dia_val[0] = 7.0;
  const auto diags = validate(s);
  ASSERT_TRUE(has_code(diags, Code::kValueStreamLength));
  EXPECT_EQ(diags.front().offset, 0);  // names the exact slot
}

TEST(Validate, FlagsScatterRowOwningDiagonalNonzeros) {
  CrsdStorage<double> s = scatter_fixture();
  // Resurrect a diagonal nonzero in scatter row 5 (segment 1, lane 1,
  // main diagonal).
  s.dia_val[static_cast<std::size_t>(12 + 1 * 4 + 1)] = 2.0;
  EXPECT_TRUE(has_code(validate(s), Code::kScatterOverlap));
  // The builder knob zero_scatter_rows_in_dia=false makes this layout
  // legitimate; the matching validator option accepts it.
  ValidateOptions opts;
  opts.require_scatter_disjoint = false;
  EXPECT_FALSE(has_code(validate(s, opts), Code::kScatterOverlap));
}

TEST(Validate, FlagsScatterRowNumberOutOfRange) {
  CrsdStorage<double> s = scatter_fixture();
  s.scatter_rowno[0] = 99;
  EXPECT_TRUE(has_code(validate(s), Code::kScatterLayout));
}

TEST(Validate, FlagsUnsortedScatterRows) {
  CrsdStorage<double> s = tri_fixture();
  s.scatter_rowno = {5, 3};
  s.scatter_width = 1;
  s.scatter_col = {2, 4};
  s.scatter_val = {1.0, 1.0};
  EXPECT_TRUE(has_code(validate(s), Code::kScatterLayout));
}

TEST(Validate, FlagsScatterEllSizeMismatch) {
  CrsdStorage<double> s = scatter_fixture();
  s.scatter_val.pop_back();
  EXPECT_TRUE(has_code(validate(s), Code::kScatterLayout));
}

TEST(Validate, FlagsScatterColumnOutOfRange) {
  CrsdStorage<double> s = scatter_fixture();
  s.scatter_col[0] = 8;  // num_cols is 8
  EXPECT_TRUE(has_code(validate(s), Code::kScatterLayout));
}

TEST(Validate, FlagsNonzeroScatterPaddingSlot) {
  CrsdStorage<double> s = scatter_fixture();
  s.scatter_val[1] = 1.0;  // slot 1 is kInvalidIndex padding
  EXPECT_TRUE(has_code(validate(s), Code::kScatterLayout));
}

TEST(Validate, CleanOnBuilderOutput) {
  Rng rng(42);
  Coo<double> a = astro_convection(24, 8, 8, /*unstructured=*/true, rng);
  inject_scatter(a, 40, rng);
  CrsdConfig cfg;
  cfg.mrows = 16;
  // CRSD_VALIDATE_BUILD already ran validate_or_throw inside build_crsd;
  // re-run both validators explicitly to assert zero diagnostics.
  const CrsdMatrix<double> m = build(a, cfg);
  EXPECT_TRUE(validate(m).empty());
  EXPECT_TRUE(validate_against(m, a).empty());

  const Coo<double> b = stencil_5pt_2d(20, 12);
  const CrsdMatrix<double> mb = build(b, cfg);
  EXPECT_TRUE(validate(mb).empty());
  EXPECT_TRUE(validate_against(mb, b).empty());
}

TEST(Validate, AgainstSourceCatchesValueDrift) {
  const Coo<double> a = stencil_5pt_2d(16, 8);
  CrsdConfig cfg;
  cfg.mrows = 16;
  CrsdMatrix<double> m = build(a, cfg);

  std::vector<double> dia = m.dia_values();
  std::vector<double> sv = m.scatter_val();
  std::size_t hit = dia.size();
  for (std::size_t i = 0; i < dia.size(); ++i) {
    if (dia[i] != 0.0) { hit = i; break; }
  }
  ASSERT_LT(hit, dia.size());
  dia[hit] += 0.5;  // keeps the slot nonzero, so only the value drifts
  m.replace_values(dia, sv);
  const auto diags = validate_against(m, a);
  ASSERT_TRUE(has_code(diags, Code::kNnzMismatch));
  EXPECT_EQ(diags.front().offset, static_cast<std::int64_t>(hit));
}

TEST(Validate, AgainstSourceCatchesDroppedEntry) {
  const Coo<double> a = stencil_5pt_2d(16, 8);
  CrsdConfig cfg;
  cfg.mrows = 16;
  CrsdMatrix<double> m = build(a, cfg);

  std::vector<double> dia = m.dia_values();
  for (std::size_t i = 0; i < dia.size(); ++i) {
    if (dia[i] != 0.0) { dia[i] = 0.0; break; }
  }
  m.replace_values(dia, m.scatter_val());
  // A zeroed slot is indistinguishable from fill, so the entry is simply
  // "stored nowhere" from the source's point of view.
  EXPECT_TRUE(has_code(validate_against(m, a), Code::kNnzMismatch));
}

TEST(Validate, OrThrowRaisesOnBrokenContainer) {
  CrsdStorage<double> s = tri_fixture();
  s.dia_val[0] = 7.0;  // nonzero padding: passes the ctor, fails validation
  const CrsdMatrix<double> m(std::move(s));
  EXPECT_THROW(validate_or_throw(m), Error);
  const CrsdMatrix<double> ok(tri_fixture());
  EXPECT_NO_THROW(validate_or_throw(ok));
}

TEST(Validate, DiagnosticsFormatNamesTheCheck) {
  CrsdStorage<double> s = tri_fixture();
  s.dia_val.pop_back();
  const auto diags = validate(s);
  ASSERT_FALSE(diags.empty());
  EXPECT_NE(format_diagnostics(diags).find("value-stream-length"),
            std::string::npos);
}

}  // namespace
}  // namespace crsd::check
