// Corner-case tests for pattern_interior_segments — the one function both
// the vectorized engine and the code generator derive their interior/edge
// split from. A brute-force predicate re-derives "interior" from first
// principles and the computed range must match it exactly.
#include <gtest/gtest.h>

#include <vector>

#include "core/pattern.hpp"

namespace crsd {
namespace {

DiagonalPattern make_pattern(index_t start_row, index_t num_segments,
                             std::vector<diag_offset_t> offsets) {
  DiagonalPattern p;
  p.start_row = start_row;
  p.num_segments = num_segments;
  p.offsets = std::move(offsets);
  p.groups = group_diagonals(p.offsets);
  return p;
}

/// First-principles interior predicate: every lane of segment g exists and
/// every (row, offset) column is in [0, num_cols).
bool is_interior(const DiagonalPattern& p, index_t g, index_t mrows,
                 index_t num_rows, index_t num_cols) {
  const std::int64_t row0 = static_cast<std::int64_t>(g) * mrows;
  if (row0 + mrows > num_rows) return false;
  for (diag_offset_t off : p.offsets) {
    for (index_t lane = 0; lane < mrows; ++lane) {
      const std::int64_t c = row0 + lane + off;
      if (c < 0 || c >= num_cols) return false;
    }
  }
  return true;
}

/// Computed range must equal the brute-force one — and the brute-force set
/// must be contiguous, or the single-interval contract itself is broken.
void expect_matches_bruteforce(const DiagonalPattern& p, index_t seg_begin,
                               index_t seg_end, index_t mrows,
                               index_t num_rows, index_t num_cols) {
  const SegmentInterior in = pattern_interior_segments(
      p, seg_begin, seg_end, mrows, num_rows, num_cols);
  ASSERT_LE(seg_begin, in.begin);
  ASSERT_LE(in.begin, in.end);
  ASSERT_LE(in.end, seg_end);
  for (index_t g = seg_begin; g < seg_end; ++g) {
    EXPECT_EQ(is_interior(p, g, mrows, num_rows, num_cols),
              g >= in.begin && g < in.end)
        << "segment " << g << " (interior [" << in.begin << ", " << in.end
        << "), mrows " << mrows << ", " << num_rows << "x" << num_cols << ")";
  }
}

TEST(PatternInterior, EmptyOffsetsHaveNoInterior) {
  const DiagonalPattern p = make_pattern(0, 4, {});
  const SegmentInterior in = pattern_interior_segments(p, 0, 4, 8, 32, 32);
  EXPECT_EQ(in.begin, in.end);
  EXPECT_EQ(in.begin, 0);
}

TEST(PatternInterior, DegenerateMrowsHasNoInterior) {
  const DiagonalPattern p = make_pattern(0, 4, {0});
  const SegmentInterior in = pattern_interior_segments(p, 0, 4, 0, 32, 32);
  EXPECT_EQ(in.begin, in.end);
}

TEST(PatternInterior, SingleSegmentEitherAllInteriorOrAllEdge) {
  // Main diagonal only, exact fit: the single segment is fully interior.
  expect_matches_bruteforce(make_pattern(0, 1, {0}), 0, 1, 8, 8, 8);
  // An offset that leaves the matrix at the last row: all edge.
  expect_matches_bruteforce(make_pattern(0, 1, {1}), 0, 1, 8, 8, 8);
  // Same offset but a wider matrix: interior again.
  expect_matches_bruteforce(make_pattern(0, 1, {1}), 0, 1, 8, 8, 9);
}

TEST(PatternInterior, ExtremeNegativeOffsetEatsTheLeadingSegments) {
  // Offset -17 needs row >= 17, i.e. segment >= 3 with mrows 8.
  const DiagonalPattern p = make_pattern(0, 8, {-17, 0});
  const SegmentInterior in = pattern_interior_segments(p, 0, 8, 8, 64, 64);
  EXPECT_EQ(in.begin, 3);
  EXPECT_EQ(in.end, 8);
  expect_matches_bruteforce(p, 0, 8, 8, 64, 64);
}

TEST(PatternInterior, ExtremePositiveOffsetEatsTheTrailingSegments) {
  // Offset +17: last admissible row0 is 64 - 8 - 17 = 39 -> segment 4.
  const DiagonalPattern p = make_pattern(0, 8, {0, 17});
  const SegmentInterior in = pattern_interior_segments(p, 0, 8, 8, 64, 64);
  EXPECT_EQ(in.begin, 0);
  EXPECT_EQ(in.end, 5);
  expect_matches_bruteforce(p, 0, 8, 8, 64, 64);
}

TEST(PatternInterior, OffsetsWiderThanTheMatrixLeaveNoInterior) {
  const DiagonalPattern p = make_pattern(0, 4, {-40, 0, 40});
  const SegmentInterior in = pattern_interior_segments(p, 0, 4, 8, 32, 32);
  EXPECT_EQ(in.begin, in.end);
  expect_matches_bruteforce(p, 0, 4, 8, 32, 32);
}

TEST(PatternInterior, RaggedLastSegmentIsAlwaysEdge) {
  // mrows does not divide num_rows: the short tail segment has missing
  // lanes and can never be interior, whatever the offsets.
  const DiagonalPattern p = make_pattern(0, 5, {0});
  const SegmentInterior in = pattern_interior_segments(p, 0, 5, 8, 35, 35);
  EXPECT_EQ(in.begin, 0);
  EXPECT_EQ(in.end, 4);
  expect_matches_bruteforce(p, 0, 5, 8, 35, 35);
}

TEST(PatternInterior, MidMatrixPatternClampsToItsOwnSegments) {
  // A pattern owning segments [2, 6) of a taller matrix: the interior is
  // clipped to the pattern's own range even when neighbouring rows would
  // qualify.
  const DiagonalPattern p = make_pattern(16, 4, {-2, 0, 2});
  expect_matches_bruteforce(p, 2, 6, 8, 64, 64);
  const SegmentInterior in = pattern_interior_segments(p, 2, 6, 8, 64, 64);
  EXPECT_EQ(in.begin, 2);
  EXPECT_EQ(in.end, 6);
}

TEST(PatternInterior, BothCornersClippedAtOnce) {
  // Wide symmetric band on a short fat matrix: both ends lose segments.
  const DiagonalPattern p = make_pattern(0, 6, {-10, -1, 0, 1, 10});
  expect_matches_bruteforce(p, 0, 6, 8, 48, 48);
}

TEST(PatternInterior, TallAndWideRectangles) {
  // More columns than rows: the positive offset gains headroom.
  expect_matches_bruteforce(make_pattern(0, 4, {0, 9}), 0, 4, 8, 32, 64);
  // More rows than columns: even the main diagonal runs out of columns.
  expect_matches_bruteforce(make_pattern(0, 8, {0}), 0, 8, 8, 64, 32);
  expect_matches_bruteforce(make_pattern(0, 8, {-3, 0, 3}), 0, 8, 8, 64, 40);
}

TEST(PatternInterior, SweepSmallShapes) {
  // Exhaustive small sweep: every (shape, offsets) combination agrees with
  // the brute-force predicate.
  const std::vector<std::vector<diag_offset_t>> offset_sets = {
      {0}, {-1, 0, 1}, {-5}, {5}, {-7, 3}, {-2, -1, 0, 1, 2}};
  for (index_t num_rows : {8, 12, 15, 16}) {
    for (index_t num_cols : {8, 12, 16, 24}) {
      for (index_t mrows : {2, 4, 8}) {
        const index_t segs = (num_rows + mrows - 1) / mrows;
        for (const auto& offs : offset_sets) {
          expect_matches_bruteforce(make_pattern(0, segs, offs), 0, segs,
                                    mrows, num_rows, num_cols);
        }
      }
    }
  }
}

}  // namespace
}  // namespace crsd
