// Tests for the extension layer: transfer model, hybrid CPU+GPU SpMV,
// auto-tuner, alternative device presets, and row slicing.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "hybrid/hybrid_spmv.hpp"
#include "kernels/crsd_autotune.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"

namespace crsd::hybrid {
namespace {

using gpusim::Device;
using gpusim::DeviceSpec;

TEST(Transfer, LatencyPlusBandwidth) {
  PcieSpec pcie;
  pcie.bandwidth_gbps = 10.0;
  pcie.latency_seconds = 1e-5;
  EXPECT_DOUBLE_EQ(transfer_seconds(pcie, 0), 0.0);
  EXPECT_NEAR(transfer_seconds(pcie, 100'000'000), 1e-5 + 0.01, 1e-9);
  // Latency dominates small transfers.
  EXPECT_GT(transfer_seconds(pcie, 8), 1e-5);
}

TEST(RowSlice, ExtractsAndRebases) {
  Coo<double> a(6, 5);
  a.add(0, 0, 1.0);
  a.add(2, 3, 2.0);
  a.add(3, 1, 3.0);
  a.add(5, 4, 4.0);
  a.canonicalize();
  const Coo<double> mid = a.row_slice(2, 4);
  EXPECT_EQ(mid.num_rows(), 2);
  EXPECT_EQ(mid.num_cols(), 5);
  ASSERT_EQ(mid.nnz(), 2u);
  EXPECT_EQ(mid.row_indices(), (std::vector<index_t>{0, 1}));
  EXPECT_EQ(mid.col_indices(), (std::vector<index_t>{3, 1}));
  // Empty and full slices.
  EXPECT_EQ(a.row_slice(1, 1).nnz(), 0u);
  EXPECT_EQ(a.row_slice(0, 6).nnz(), a.nnz());
  EXPECT_THROW(a.row_slice(4, 2), Error);
}

TEST(HybridSpmv, ComputesCorrectProductAtEverySplit) {
  Rng rng(1);
  const auto a = astro_convection(10, 10, 8, false, rng);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<double> want(static_cast<std::size_t>(a.num_rows()));
  a.spmv_reference(x.data(), want.data());

  HybridConfig cfg;
  cfg.crsd.mrows = 64;
  for (index_t split : {index_t{0}, index_t{64}, index_t{384},
                        a.num_rows() / 64 * 64, a.num_rows()}) {
    Device dev(DeviceSpec::tesla_c2050());
    const HybridSpmv<double> engine(a, split, cfg);
    std::vector<double> y(want.size(), -1.0);
    const HybridTiming t = engine.run(dev, x.data(), y.data());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(y[i], want[i], 1e-12) << "split " << split << " row " << i;
    }
    EXPECT_GT(t.total_seconds(), 0.0);
  }
}

TEST(HybridSpmv, TimingDecomposition) {
  Rng rng(2);
  const auto a = astro_convection(10, 10, 8, false, rng);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  HybridConfig cfg;
  cfg.crsd.mrows = 64;
  Device dev(DeviceSpec::tesla_c2050());

  const HybridSpmv<double> pure_cpu(a, 0, cfg);
  const HybridTiming t_cpu = pure_cpu.run(dev, x.data(), y.data());
  EXPECT_EQ(t_cpu.gpu_seconds, 0.0);
  EXPECT_EQ(t_cpu.transfer_seconds, 0.0);
  EXPECT_GT(t_cpu.cpu_seconds, 0.0);

  const HybridSpmv<double> pure_gpu(a, a.num_rows(), cfg);
  const HybridTiming t_gpu = pure_gpu.run(dev, x.data(), y.data());
  EXPECT_EQ(t_gpu.cpu_seconds, 0.0);
  EXPECT_GT(t_gpu.gpu_seconds, 0.0);
  EXPECT_GT(t_gpu.transfer_seconds, 0.0);

  HybridConfig resident = cfg;
  resident.transfer_vectors_each_spmv = false;
  const HybridSpmv<double> resident_gpu(a, a.num_rows(), resident);
  EXPECT_EQ(resident_gpu.run(dev, x.data(), y.data()).transfer_seconds, 0.0);
}

TEST(HybridSpmv, ChooseSplitRespondsToTransferCost) {
  // Cheap transfers: the GPU (much faster in the model) should take all or
  // nearly all rows. Absurdly expensive transfers: everything stays on CPU.
  const auto a = paper_matrix(9).generate(0.05);  // kim1-like
  HybridConfig cheap;
  cheap.crsd.mrows = 64;
  cheap.pcie.bandwidth_gbps = 1000.0;
  cheap.pcie.latency_seconds = 1e-9;
  Device dev(DeviceSpec::tesla_c2050());
  const index_t split_cheap =
      HybridSpmv<double>::choose_split(a, dev, cheap);
  EXPECT_GT(split_cheap, a.num_rows() / 2);

  HybridConfig expensive = cheap;
  expensive.pcie.bandwidth_gbps = 0.001;
  expensive.pcie.latency_seconds = 1.0;
  EXPECT_EQ(HybridSpmv<double>::choose_split(a, dev, expensive), 0);
}

TEST(DevicePresets, DistinctAndPlausible) {
  const DeviceSpec gtx = DeviceSpec::geforce_gtx280();
  const DeviceSpec amd = DeviceSpec::amd_cypress();
  EXPECT_EQ(gtx.num_compute_units, 30);
  EXPECT_EQ(gtx.global_mem_bytes, 1ull << 30);
  EXPECT_LT(gtx.peak_gflops_double, 100.0);  // GT200's weak DP
  EXPECT_EQ(amd.wavefront_size, 64);
  EXPECT_GT(amd.peak_gflops_single, 2000.0);
}

TEST(DevicePresets, WavefrontConstraintDiffersOnAmd) {
  const auto a = dense_band(512, 2);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  std::vector<double> x(512, 1.0), y(512);
  Device nvidia(DeviceSpec::tesla_c2050());
  EXPECT_NO_THROW(kernels::gpu_spmv_crsd(nvidia, m, x.data(), y.data()));
  // mrows=32 is illegal on a 64-wide wavefront device.
  Device amd(DeviceSpec::amd_cypress());
  EXPECT_THROW(kernels::gpu_spmv_crsd(amd, m, x.data(), y.data()), Error);
  const auto m64 = build(a, CrsdConfig{.mrows = 64});
  EXPECT_NO_THROW(kernels::gpu_spmv_crsd(amd, m64, x.data(), y.data()));
}

TEST(Autotune, FindsLegalBestAndCoversGrid) {
  const auto a = paper_matrix(18).generate(0.03);
  Device dev(DeviceSpec::tesla_c2050());
  kernels::AutotuneSpace space;
  space.mrows = {32, 48, 64};  // 48 must be skipped (not a wave multiple)
  space.fill_max_gap_segments = {0, 4};
  space.live_min_fill = {0.5};
  space.use_local_memory = {true, false};
  const auto result = kernels::autotune_crsd(dev, a, space);
  EXPECT_EQ(result.trials.size(), 2u * 2u * 1u * 2u);  // 48 skipped
  EXPECT_EQ(result.best_config.mrows % 32, 0);
  EXPECT_GT(result.best_seconds, 0.0);
  for (const auto& trial : result.trials) {
    EXPECT_GE(trial.seconds, result.best_seconds);
  }
}

TEST(Autotune, BestBeatsDefaultOrMatches) {
  const auto a = paper_matrix(5).generate(0.01);  // ecology1-like
  Device dev(DeviceSpec::tesla_c2050());
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  const auto m_default = build(a, CrsdConfig{.mrows = 64});
  const double t_default =
      kernels::gpu_spmv_crsd(dev, m_default, x.data(), y.data()).seconds;
  const auto result = kernels::autotune_crsd(dev, a);
  EXPECT_LE(result.best_seconds, t_default * 1.0001);
}

}  // namespace
}  // namespace crsd::hybrid
