// Tests for the simulator's checking mode (crsd::check::MemChecker): each
// detector is proven live by a mutation kernel that fails without the
// checker and is flagged with a precise diagnostic when it is attached, and
// the zero-overhead claim is proven by counter equality with and without a
// checker on the real CRSD kernel.
#include <gtest/gtest.h>

#include <vector>

#include "check/memcheck.hpp"
#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "gpusim/executor.hpp"
#include "kernels/crsd_gpu.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"

namespace crsd::check {
namespace {

using gpusim::Buffer;
using gpusim::Device;
using gpusim::DeviceSpec;
using gpusim::LaunchConfig;
using gpusim::WorkGroupCtx;

LaunchConfig make_cfg(MemChecker& chk, index_t num_groups, index_t group_size,
                      const char* name) {
  LaunchConfig cfg;
  cfg.num_groups = num_groups;
  cfg.group_size = group_size;
  cfg.kernel_name = name;
  cfg.checker = &chk;
  return cfg;
}

TEST(MemCheck, FlagsGlobalReadOutOfBounds) {
  Device dev(DeviceSpec::tesla_c2050());
  MemChecker chk(dev.spec());
  Buffer buf = dev.alloc(64 * sizeof(double));
  gpusim::launch(dev, make_cfg(chk, 1, 32, "oob_read"),
                 [&](WorkGroupCtx& ctx) {
                   // Element 64 of a 64-element buffer: one past the end.
                   ctx.global_read_block(buf, 33, 32, sizeof(double));
                 });
  ASSERT_FALSE(chk.clean());
  const Diagnostic& d = chk.diagnostics().front();
  EXPECT_EQ(d.code, Code::kGlobalOutOfBounds);
  EXPECT_EQ(d.kernel, "oob_read");
  EXPECT_EQ(d.group, 0);
  EXPECT_EQ(d.lane, 31);  // lane 31 reads element 33 + 31 = 64
  EXPECT_EQ(d.offset, 64 * std::int64_t{sizeof(double)});
  dev.free(buf);
}

TEST(MemCheck, FlagsGatherOutOfBounds) {
  Device dev(DeviceSpec::tesla_c2050());
  MemChecker chk(dev.spec());
  Buffer buf = dev.alloc(16 * sizeof(double));
  std::vector<size64_t> idx(32, 0);
  idx[7] = 99;  // lane 7 gathers far past the allocation
  gpusim::launch(dev, make_cfg(chk, 1, 32, "oob_gather"),
                 [&](WorkGroupCtx& ctx) {
                   ctx.global_gather(buf, idx.data(), 32, sizeof(double),
                                     /*cached=*/true);
                 });
  ASSERT_FALSE(chk.clean());
  EXPECT_EQ(chk.diagnostics().front().code, Code::kGlobalOutOfBounds);
  EXPECT_EQ(chk.diagnostics().front().lane, 7);
  dev.free(buf);
}

TEST(MemCheck, FlagsLocalRaceAcrossWavefrontsWithoutBarrier) {
  Device dev(DeviceSpec::tesla_c2050());  // wavefront 32
  MemChecker chk(dev.spec());
  // Two wavefronts: a write then an overlapping read with no barrier is a
  // cross-wavefront hazard.
  gpusim::launch(dev, make_cfg(chk, 1, 64, "local_race"),
                 [&](WorkGroupCtx& ctx) {
                   ctx.local_write_range(0, 256);
                   ctx.local_read_range(128, 64);  // overlaps, no barrier
                 });
  ASSERT_FALSE(chk.clean());
  const Diagnostic& d = chk.diagnostics().front();
  EXPECT_EQ(d.code, Code::kLocalRace);
  EXPECT_EQ(d.kernel, "local_race");
}

TEST(MemCheck, BarrierSeparatesLocalEpochs) {
  Device dev(DeviceSpec::tesla_c2050());
  MemChecker chk(dev.spec());
  gpusim::launch(dev, make_cfg(chk, 4, 64, "local_clean"),
                 [&](WorkGroupCtx& ctx) {
                   ctx.local_write_range(0, 256);
                   ctx.barrier();
                   ctx.local_read_range(128, 64);  // ordered by the barrier
                 });
  EXPECT_TRUE(chk.clean()) << chk.report();
}

TEST(MemCheck, SingleWavefrontCannotRace) {
  Device dev(DeviceSpec::tesla_c2050());
  MemChecker chk(dev.spec());
  // One wavefront runs in lockstep: the same access sequence that races at
  // group size 64 is legal at 32.
  gpusim::launch(dev, make_cfg(chk, 1, 32, "lockstep"),
                 [&](WorkGroupCtx& ctx) {
                   ctx.local_write_range(0, 256);
                   ctx.local_read_range(128, 64);
                 });
  EXPECT_TRUE(chk.clean()) << chk.report();
}

TEST(MemCheck, FlagsWriteAfterReadOnReusedLocalBuffer) {
  Device dev(DeviceSpec::tesla_c2050());
  MemChecker chk(dev.spec());
  // Staging buffer reuse without the trailing barrier (the bug the second
  // barrier in the AD-group staging loop exists to prevent).
  gpusim::launch(dev, make_cfg(chk, 1, 64, "waw_reuse"),
                 [&](WorkGroupCtx& ctx) {
                   ctx.local_write_range(0, 512);
                   ctx.barrier();
                   ctx.local_read_range(0, 512);
                   ctx.local_write_range(0, 512);  // reuse: WAR hazard
                 });
  ASSERT_FALSE(chk.clean());
  EXPECT_EQ(chk.diagnostics().front().code, Code::kLocalRace);
}

TEST(MemCheck, FlagsBarrierDivergence) {
  Device dev(DeviceSpec::tesla_c2050());
  MemChecker chk(dev.spec());
  gpusim::launch(dev, make_cfg(chk, 2, 64, "divergent"),
                 [&](WorkGroupCtx& ctx) {
                   ctx.barrier(32);  // only one wavefront reaches it
                 });
  ASSERT_FALSE(chk.clean());
  const Diagnostic& d = chk.diagnostics().front();
  EXPECT_EQ(d.code, Code::kBarrierDivergence);
  EXPECT_EQ(d.offset, 32);  // how many work-items arrived
}

TEST(MemCheck, FlagsCrossWorkItemWriteConflict) {
  Device dev(DeviceSpec::tesla_c2050());
  MemChecker chk(dev.spec());
  Buffer y = dev.alloc(1024 * sizeof(double));
  // Every group writes y[0..31]: groups 1+ conflict with group 0.
  gpusim::launch(dev, make_cfg(chk, 2, 32, "conflict"),
                 [&](WorkGroupCtx& ctx) {
                   ctx.global_write_block(y, 0, 32, sizeof(double));
                 });
  ASSERT_FALSE(chk.clean());
  const Diagnostic& d = chk.diagnostics().front();
  EXPECT_EQ(d.code, Code::kWriteConflict);
  EXPECT_EQ(d.group, 1);
  dev.free(y);
}

TEST(MemCheck, WriteOwnershipResetsBetweenLaunches) {
  Device dev(DeviceSpec::tesla_c2050());
  MemChecker chk(dev.spec());
  Buffer y = dev.alloc(64 * sizeof(double));
  auto body = [&](WorkGroupCtx& ctx) {
    ctx.global_write_block(y, 0, 32, sizeof(double));
  };
  // The CRSD scatter phase legitimately overwrites y rows the diagonal
  // phase wrote — separate launches must not conflict.
  gpusim::launch(dev, make_cfg(chk, 1, 32, "diag_phase"), body);
  gpusim::launch(dev, make_cfg(chk, 1, 32, "scatter_phase"), body);
  EXPECT_TRUE(chk.clean()) << chk.report();
  dev.free(y);
}

TEST(MemCheck, FlagsLocalOutOfBounds) {
  Device dev(DeviceSpec::geforce_gtx280());  // 16 KiB local per CU
  MemChecker chk(dev.spec());
  gpusim::launch(dev, make_cfg(chk, 1, 32, "local_oob"),
                 [&](WorkGroupCtx& ctx) {
                   ctx.local_write_range((16u << 10) - 64, 128);
                 });
  ASSERT_FALSE(chk.clean());
  EXPECT_EQ(chk.diagnostics().front().code, Code::kLocalOutOfBounds);
}

TEST(MemCheck, DiagnosticsAreDedupedAndBounded) {
  Device dev(DeviceSpec::tesla_c2050());
  MemChecker::Options opts;
  opts.max_diagnostics = 4;
  MemChecker chk(dev.spec(), opts);
  Buffer buf = dev.alloc(8);
  gpusim::launch(dev, make_cfg(chk, 64, 32, "flood"),
                 [&](WorkGroupCtx& ctx) {
                   ctx.global_read_block(buf, 100, 32, sizeof(double));
                 });
  EXPECT_LE(chk.diagnostics().size(), 4u);
  EXPECT_GT(chk.dropped(), 0u);
  chk.reset();
  EXPECT_TRUE(chk.clean());
  EXPECT_EQ(chk.dropped(), 0u);
  dev.free(buf);
}

// The real CRSD kernel, checked: clean on a paper-suite matrix, and the
// event trace (hence the timing model) is bit-identical with and without
// the checker — checking mode off adds zero overhead, checking mode on
// perturbs nothing it observes.
TEST(MemCheck, CrsdKernelIsCleanAndCheckerPreservesCounters) {
  for (int id : {1, 9, 18}) {
    const auto& spec = paper_matrix(id);
    const Coo<double> a = spec.generate(0.02);
    CrsdConfig cfg;
    cfg.mrows = 64;
    const CrsdMatrix<double> m = build(a, cfg);

    Rng rng(11);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
    for (auto& v : x) v = rng.next_double(-1.0, 1.0);
    std::vector<double> y0(static_cast<std::size_t>(a.num_rows()), 0.0);
    std::vector<double> y1 = y0;

    Device dev(DeviceSpec::tesla_c2050());
    kernels::CrsdGpuOptions plain;
    const auto base = kernels::gpu_spmv_crsd(dev, m, x.data(), y0.data(),
                                             plain);

    MemChecker chk(dev.spec());
    kernels::CrsdGpuOptions checked;
    checked.checker = &chk;
    const auto traced = kernels::gpu_spmv_crsd(dev, m, x.data(), y1.data(),
                                               checked);

    EXPECT_TRUE(chk.clean()) << spec.name << ":\n" << chk.report();
    EXPECT_EQ(base.counters.flops, traced.counters.flops) << spec.name;
    EXPECT_EQ(base.counters.global_load_transactions,
              traced.counters.global_load_transactions) << spec.name;
    EXPECT_EQ(base.counters.global_store_transactions,
              traced.counters.global_store_transactions) << spec.name;
    EXPECT_EQ(base.counters.local_bytes, traced.counters.local_bytes)
        << spec.name;
    EXPECT_EQ(base.counters.barriers, traced.counters.barriers) << spec.name;
    EXPECT_EQ(y0, y1) << spec.name;
  }
}

}  // namespace
}  // namespace crsd::check
