// Tests for the 23-matrix paper suite: identity data matches Table V, scaled
// generation preserves the structure each figure depends on.
#include <gtest/gtest.h>

#include "matrix/paper_suite.hpp"
#include "matrix/stats.hpp"

namespace crsd {
namespace {

TEST(PaperSuite, HasAll23MatricesInOrder) {
  const auto& suite = paper_suite();
  ASSERT_EQ(suite.size(), 23u);
  for (int i = 0; i < 23; ++i) {
    EXPECT_EQ(suite[static_cast<std::size_t>(i)].id, i + 1);
  }
  EXPECT_EQ(suite[0].name, "crystk03");
  EXPECT_EQ(suite[4].name, "ecology1");
  EXPECT_EQ(suite[10].name, "af_1_k101");
  EXPECT_EQ(suite[22].name, "us110_110_68");
}

TEST(PaperSuite, TableVIdentityNumbers) {
  // Spot-check the published dims/nnz recorded from Table V.
  EXPECT_EQ(paper_matrix(3).full_rows, 90449);
  EXPECT_EQ(paper_matrix(3).full_nnz, 1921955u);
  EXPECT_EQ(paper_matrix(5).full_rows, 1000000);
  EXPECT_EQ(paper_matrix(10).full_rows, 456976);
  EXPECT_EQ(paper_matrix(10).full_nnz, 11330020u);
  EXPECT_EQ(paper_matrix(18).full_rows, 320000);  // 80*80*50
  EXPECT_EQ(paper_matrix(20).full_rows, 822800);  // 110*110*68
}

TEST(PaperSuite, LookupRejectsBadIds) {
  EXPECT_THROW(paper_matrix(0), Error);
  EXPECT_THROW(paper_matrix(24), Error);
}

TEST(PaperSuite, AfK101ReproducesDiaOverflowAtFullSize) {
  // The paper: DIA for af_*_k101 exceeds the C2050's 3 GB device memory in
  // double precision but fits in single. Verify via the recorded diagonal
  // count without generating the full matrix.
  const auto& spec = paper_matrix(11);
  const size64_t dia_double =
      spec.full_num_diagonals * spec.full_rows * sizeof(double);
  const size64_t dia_single =
      spec.full_num_diagonals * spec.full_rows * sizeof(float);
  const size64_t device_mem = 3ull << 30;
  EXPECT_GT(dia_double, device_mem);
  EXPECT_LT(dia_single, device_mem);
}

TEST(PaperSuite, ScaledGenerationPreservesDiagonalCounts) {
  // Structure-preserving scaling: the number of distinct diagonals of the
  // block-structured families must not depend on scale.
  for (int id : {3, 11}) {
    const auto& spec = paper_matrix(id);
    const auto a = spec.generate(0.05);
    const StructureStats s = compute_stats(a);
    EXPECT_EQ(s.num_diagonals(), spec.full_num_diagonals)
        << spec.name << " at scale 0.05";
    EXPECT_LT(a.num_rows(), spec.full_rows);
  }
}

TEST(PaperSuite, StencilFamiliesKeepDiagonalCountsAtScale) {
  for (int id : {9, 15}) {
    const auto& spec = paper_matrix(id);
    const auto a = spec.generate(0.1);
    const StructureStats s = compute_stats(a);
    EXPECT_EQ(s.num_diagonals(), spec.full_num_diagonals) << spec.name;
  }
}

TEST(PaperSuite, WangHasManyDiagonalsButSevenPerRow) {
  // wang3/wang4: per-row width stays 7 while the union of offsets grows
  // with the slab count — DIA-hostile, as §IV-A reports.
  const auto a = paper_matrix(7).generate(0.1);
  const StructureStats s = compute_stats(a);
  EXPECT_LE(s.max_nnz_per_row, 7);
  EXPECT_GT(s.num_diagonals(), 5u * s.max_nnz_per_row);
  EXPECT_LT(s.dia_efficiency(), 0.25);
}

TEST(PaperSuite, GenerationIsDeterministic) {
  const auto& spec = paper_matrix(21);  // us80_80_50, heaviest RNG use
  const auto a = spec.generate(0.08);
  const auto b = spec.generate(0.08);
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.row_indices(), b.row_indices());
  EXPECT_EQ(a.values(), b.values());
}

TEST(PaperSuite, NnzPerRowRoughlyMatchesTableV) {
  // The per-row density drives every GFLOPS figure; scaled instances must
  // stay within ~35% of the published average.
  for (int id : {1, 3, 5, 7, 9, 15, 18}) {
    const auto& spec = paper_matrix(id);
    const auto a = spec.generate(0.08);
    const double want = double(spec.full_nnz) / double(spec.full_rows);
    const double got = double(a.nnz()) / double(a.num_rows());
    EXPECT_NEAR(got / want, 1.0, 0.35) << spec.name;
  }
}

TEST(PaperSuite, EcologyFamilyHasIdleSections) {
  const auto a = paper_matrix(5).generate(0.02);
  const StructureStats s = compute_stats(a);
  ASSERT_EQ(s.num_diagonals(), 5u);
  for (const auto& d : s.diagonals) {
    if (d.offset == 0) {
      EXPECT_EQ(d.nnz, d.length);  // main diagonal unbroken
    } else {
      EXPECT_NEAR(d.fill(), 0.5, 0.05);  // half-covered -> idle sections
    }
  }
}

}  // namespace
}  // namespace crsd
