// Mixed-precision / compact-index storage suite: tolerance-gated parity of
// every compact storage mode against the fp64 build over paper-suite
// structures, bitwise reproducibility of the native-value modes, mutation
// fixtures proving the validator catches corrupted narrow/delta index
// streams, serialization round trips, value updates with re-quantization,
// the footprint diet, and simulated-memcheck cleanliness of the
// compact-mode kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "check/close.hpp"
#include "check/memcheck.hpp"
#include "check/validate.hpp"
#include "codegen/crsd_jit_kernel.hpp"
#include "common/rng.hpp"
#include "formats/delta_stream.hpp"
#include "core/build_api.hpp"
#include "core/serialize.hpp"
#include "core/update.hpp"
#include "kernels/crsd_gpu.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"
#include "obs/metrics.hpp"

namespace crsd {
namespace {

/// Every non-default mode, headline (fp32 + u16 ELL) first.
const std::vector<StorageOptions>& compact_modes() {
  static const std::vector<StorageOptions> modes = {
      {ValuePrecision::kFloat32, true, false},
      {ValuePrecision::kFloat32, false, true},
      {ValuePrecision::kNative, true, false},
      {ValuePrecision::kNative, false, true},
      {ValuePrecision::kFloat16, true, false},
  };
  return modes;
}

std::string mode_name(const StorageOptions& s) {
  return std::string(value_precision_name(s.value_precision)) +
         (s.delta_scatter_indices ? "+delta"
                                  : (s.narrow_scatter_indices ? "+i16" : ""));
}

/// Structured + scatter mix with every builder feature engaged.
Coo<double> mixed_matrix(int seed = 7) {
  Rng rng(seed);
  auto a = broken_diagonals(
      700, {{-96, 0.55, 4}, {-1, 1.0, 1}, {0, 1.0, 1}, {1, 0.9, 2},
            {96, 0.6, 5}},
      rng);
  inject_scatter(a, 60, rng);
  return a;
}

CrsdMatrix<double> build_mode(const Coo<double>& a, const StorageOptions& s,
                              index_t mrows = 64) {
  CrsdConfig cfg;
  cfg.mrows = mrows;
  cfg.storage = s;
  return build(a, cfg);
}

std::vector<double> spmv_of(const CrsdMatrix<double>& m,
                            const std::vector<double>& x) {
  std::vector<double> y(static_cast<std::size_t>(m.num_rows()));
  m.spmv(x.data(), y.data());
  return y;
}

size64_t max_row_terms(const Coo<double>& a) {
  std::vector<size64_t> row_nnz(static_cast<std::size_t>(a.num_rows()), 0);
  for (size64_t k = 0; k < a.nnz(); ++k) {
    ++row_nnz[static_cast<std::size_t>(a.row_indices()[k])];
  }
  size64_t max_terms = 0;
  for (size64_t n : row_nnz) max_terms = std::max(max_terms, n);
  return max_terms;
}

TEST(MixedPrecision, ParityOverPaperSuiteStructures) {
  // Idle-section, scatter-heavy, and dense-band representatives.
  for (int id : {3, 7, 15}) {
    const auto& spec = paper_matrix(id);
    const auto a = spec.generate(0.05);
    Rng rng(2026);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
    for (auto& v : x) v = rng.next_double(-1.0, 1.0);

    const auto fp64 = build_mode(a, {});
    const auto y_ref = spmv_of(fp64, x);
    double ref_scale = 0.0;
    for (double v : y_ref) ref_scale = std::max(ref_scale, std::abs(v));
    const size64_t terms = max_row_terms(a);

    for (const auto& mode : compact_modes()) {
      const auto m = build_mode(a, mode);
      EXPECT_TRUE(check::validate(m).empty()) << spec.name << " "
                                              << mode_name(mode);
      EXPECT_TRUE(check::validate_against(m, a).empty())
          << spec.name << " " << mode_name(mode);
      const auto y = spmv_of(m, x);
      const auto bound = check::storage_parity_bound<double>(
          m.value_precision(), terms, ref_scale);
      // Tolerance-gated, never bitwise: the bound comes from the storage
      // roundoff and the matrix's accumulation length.
      check::assert_close((spec.name + " " + mode_name(mode)).c_str(),
                          y.data(), y_ref.data(), y.size(), bound);
    }
  }
}

TEST(MixedPrecision, NativeValueCompactIndexModesAreBitwise) {
  // u16/delta columns re-encode positions, not values, and the kernels
  // visit columns in the same ascending order — so with native value
  // streams the sweep must reproduce the fp64 baseline bit for bit.
  const auto a = mixed_matrix();
  Rng rng(11);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);

  const auto fp64 = build_mode(a, {});
  const auto y_ref = spmv_of(fp64, x);
  for (const StorageOptions& mode : compact_modes()) {
    if (mode.value_precision != ValuePrecision::kNative) continue;
    const auto m = build_mode(a, mode);
    ASSERT_NE(m.scatter_index_mode(), ScatterIndexMode::kIndex32)
        << mode_name(mode);
    // Cross-width storage equality: decoded streams identical.
    EXPECT_TRUE(check::validate_same_storage(fp64, m).empty())
        << mode_name(mode);
    const auto y = spmv_of(m, x);
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_EQ(y[i], y_ref[i]) << mode_name(mode) << " row " << i;
    }
  }
}

TEST(MixedPrecision, ValidatorCatchesFlippedNarrowIndex) {
  const auto a = mixed_matrix();
  const auto m = build_mode(a, {ValuePrecision::kNative, true, false});
  ASSERT_EQ(m.scatter_index_mode(), ScatterIndexMode::kIndex16);
  ASSERT_TRUE(check::validate(m.storage()).empty());

  // Find a live (non-pad) entry and flip it out of the column range.
  CrsdStorage<double> s = m.storage();
  std::size_t live = s.scatter_col16.size();
  for (std::size_t i = 0; i < s.scatter_col16.size(); ++i) {
    if (s.scatter_col16[i] != kScatterPad16) {
      live = i;
      break;
    }
  }
  ASSERT_LT(live, s.scatter_col16.size());
  s.scatter_col16[live] =
      static_cast<std::uint16_t>(s.num_cols);  // one past the last column
  const auto diags = check::validate(s);
  EXPECT_FALSE(diags.empty()) << "out-of-range u16 column not flagged";

  // A bit flip that lands inside the column range but breaks the ascending
  // per-row order is caught by the structural pass.
  CrsdStorage<double> s2 = m.storage();
  bool flipped = false;
  const std::size_t nsr = s2.scatter_rowno.size();
  for (std::size_t k = 1; k + 1 <= static_cast<std::size_t>(s2.scatter_width);
       ++k) {
    for (std::size_t i = 0; i < nsr; ++i) {
      const std::size_t slot = k * nsr + i;
      if (s2.scatter_col16[slot] != kScatterPad16 &&
          s2.scatter_col16[(k - 1) * nsr + i] != kScatterPad16) {
        s2.scatter_col16[slot] = s2.scatter_col16[(k - 1) * nsr + i];
        flipped = true;
        break;
      }
    }
    if (flipped) break;
  }
  ASSERT_TRUE(flipped);
  EXPECT_FALSE(check::validate(s2).empty())
      << "duplicated u16 column (order violation) not flagged";
}

TEST(MixedPrecision, ValidatorCatchesCorruptDeltaStream) {
  const auto a = mixed_matrix();
  const auto m = build_mode(a, {ValuePrecision::kNative, false, true});
  ASSERT_EQ(m.scatter_index_mode(), ScatterIndexMode::kDelta);
  ASSERT_TRUE(check::validate(m.storage()).empty());
  ASSERT_FALSE(m.storage().scatter_delta.empty());

  // Setting a continuation bit mid-stream derails the varint decoder.
  {
    CrsdStorage<double> s = m.storage();
    s.scatter_delta[s.scatter_delta.size() / 2] |= 0x80u;
    const auto diags = check::validate(s);
    EXPECT_TRUE(check::has_errors(diags));
    bool delta_code = false;
    for (const auto& d : diags) {
      delta_code = delta_code || d.code == check::Code::kDeltaStream;
    }
    EXPECT_TRUE(delta_code) << check::format_diagnostics(diags);
  }
  // A zero gap (duplicate column) is an encoding-level error. Locate the
  // first gap varint of a row with >= 2 live entries — the byte right after
  // the absolute-first-column varint — and zero it.
  {
    CrsdStorage<double> s = m.storage();
    bool mutated = false;
    for (std::size_t i = 0; i + 1 < s.scatter_delta_ptr.size(); ++i) {
      const size64_t begin = static_cast<size64_t>(s.scatter_delta_ptr[i]);
      const size64_t end = static_cast<size64_t>(s.scatter_delta_ptr[i + 1]);
      size64_t pos = begin;
      std::uint32_t first_col = 0;
      if (!delta::read_varint(s.scatter_delta.data(), end, pos, first_col) ||
          pos >= end) {
        continue;  // row with fewer than two entries
      }
      s.scatter_delta[static_cast<std::size_t>(pos)] = 0u;  // gap := 0
      mutated = true;
      break;
    }
    ASSERT_TRUE(mutated);
    const auto diags = check::validate(s);
    EXPECT_TRUE(check::has_errors(diags)) << check::format_diagnostics(diags);
  }
  // Delta pointers that do not cover the stream are rejected outright.
  {
    CrsdStorage<double> s = m.storage();
    s.scatter_delta_ptr.back() =
        static_cast<index_t>(s.scatter_delta.size() + 3);
    EXPECT_TRUE(check::has_errors(check::validate(s)));
  }
}

TEST(MixedPrecision, SerializeRoundTripEveryMode) {
  const auto a = mixed_matrix();
  Rng rng(5);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);

  std::vector<StorageOptions> modes = compact_modes();
  modes.push_back({});  // native/i32 baseline uses the same v002 container
  for (const auto& mode : modes) {
    const auto m = build_mode(a, mode);
    std::stringstream ss;
    write_crsd(ss, m);
    const auto back = read_crsd<double>(ss);
    EXPECT_EQ(back.value_precision(), m.value_precision()) << mode_name(mode);
    EXPECT_EQ(back.scatter_index_mode(), m.scatter_index_mode())
        << mode_name(mode);
    EXPECT_TRUE(check::validate_same_storage(m, back).empty())
        << mode_name(mode);
    // The round trip preserves the encoded streams, so the sweep is
    // bitwise identical — even for the quantized value modes.
    const auto y0 = spmv_of(m, x);
    const auto y1 = spmv_of(back, x);
    for (std::size_t i = 0; i < y0.size(); ++i) {
      ASSERT_EQ(y0[i], y1[i]) << mode_name(mode) << " row " << i;
    }
  }
}

TEST(MixedPrecision, UpdateValuesRequantizes) {
  // OSKI-style value update on a compacted container: new values must land
  // re-quantized, reproducing a fresh compact build of the updated matrix.
  const auto a = mixed_matrix();
  Coo<double> scaled(a.num_rows(), a.num_cols());
  for (size64_t k = 0; k < a.nnz(); ++k) {
    scaled.add(a.row_indices()[k], a.col_indices()[k],
               a.values()[k] * 1.75 + 0.01);
  }
  scaled.canonicalize();

  for (const auto& mode : compact_modes()) {
    auto m = build_mode(a, mode);
    update_values(m, scaled);
    const auto fresh = build_mode(scaled, mode);
    EXPECT_TRUE(check::validate_same_storage(fresh, m).empty())
        << mode_name(mode);
    EXPECT_TRUE(check::validate_against(m, scaled).empty())
        << mode_name(mode);
  }
}

TEST(MixedPrecision, FootprintDietAndGauge) {
  // Headline claim at container level: fp32 + narrow indices carries >= 25%
  // fewer bytes/nnz than the fp64 build (it actually halves them) on the
  // dense-band family, and the build publishes the bytes/nnz gauge.
  const auto a = paper_matrix(15).generate(0.05);  // nemeth21
  const auto fp64 = build_mode(a, {});
  const double base =
      double(fp64.footprint_bytes()) / double(fp64.nnz());

  const auto fp32 = build_mode(a, {ValuePrecision::kFloat32, true, false});
  const double diet =
      double(fp32.footprint_bytes()) / double(fp32.nnz());
  EXPECT_LE(diet, 0.75 * base) << "fp32+i16 must shed >= 25% of bytes/nnz";

  const double gauge =
      obs::Registry::global().gauge("crsd.storage.bytes_per_nnz").value();
  EXPECT_DOUBLE_EQ(gauge, diet);

  const auto fp16 = build_mode(a, {ValuePrecision::kFloat16, true, false});
  EXPECT_LE(double(fp16.footprint_bytes()), 0.5 * double(fp64.footprint_bytes()));
}

TEST(MixedPrecision, GpuKernelMatchesCpuAndPassesMemcheck) {
  // The interpreted simulated-GPU kernel decodes every mode with the same
  // accumulator policy as the CPU path, and its accesses stay in bounds
  // under the simulator's checking mode (the OOB net for the compact-mode
  // traffic model).
  const auto a = mixed_matrix();
  Rng rng(13);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());

  std::vector<StorageOptions> modes = compact_modes();
  modes.push_back({});
  for (const auto& mode : modes) {
    const auto m = build_mode(a, mode);
    const auto y_cpu = spmv_of(m, x);
    std::vector<double> y_gpu(static_cast<std::size_t>(a.num_rows()));
    check::MemChecker chk(dev.spec());
    kernels::CrsdGpuOptions opts;
    opts.checker = &chk;
    kernels::gpu_spmv_crsd(dev, m, x.data(), y_gpu.data(), opts);
    EXPECT_TRUE(chk.clean()) << mode_name(mode) << ":\n" << chk.report();
    for (std::size_t i = 0; i < y_cpu.size(); ++i) {
      ASSERT_EQ(y_gpu[i], y_cpu[i]) << mode_name(mode) << " row " << i;
    }
  }
}

TEST(MixedPrecision, JitCodeletParity) {
  if (!codegen::JitCompiler::compiler_available()) {
    GTEST_SKIP() << "no host compiler for JIT";
  }
  codegen::JitCompiler::Options jit_opts;
  jit_opts.cache_dir = (std::filesystem::temp_directory_path() /
                        ("crsd-mixed-jit-" + std::to_string(::getpid())))
                           .string();
  codegen::JitCompiler compiler(jit_opts);

  const auto a = mixed_matrix();
  Rng rng(17);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);

  std::vector<StorageOptions> modes = compact_modes();
  modes.push_back({});
  for (const auto& mode : modes) {
    const auto m = build_mode(a, mode);
    auto kernel = codegen::make_jit_kernel(m, compiler);
    ASSERT_TRUE(kernel.has_value()) << mode_name(mode);
    const auto y_ref = spmv_of(m, x);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
    kernel->spmv(m, x.data(), y.data());
    // The codelet mirrors the container kernels' accumulation order and
    // half-decode bit algorithm, so parity is exact, not just within
    // tolerance.
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_EQ(y[i], y_ref[i]) << mode_name(mode) << " row " << i;
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(jit_opts.cache_dir, ec);
}

}  // namespace
}  // namespace crsd
