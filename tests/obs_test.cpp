// Observability subsystem tests: span recording, nesting, and cross-thread
// merge order; the Chrome-trace exporter's schema; the metrics registry and
// its JSON dump; the zero-allocation guarantee of disabled spans; and the
// gpu_spmv dispatcher honoring GpuSpmvOptions (work-group size, CRSD
// execution options, tuning-cache defaulting).
#include "crsd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it, so
// tests can assert that a code path allocates nothing. Deallocation
// functions are forwarded unchanged.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc(std::size_t n, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  void* p = std::aligned_alloc(a, (n + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_alloc(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_alloc(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace crsd {
namespace {

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

/// Spans whose name starts with `prefix`, in snapshot (start-time) order.
std::vector<obs::SpanEvent> spans_with_prefix(const std::string& prefix) {
  std::vector<obs::SpanEvent> out;
  for (const obs::SpanEvent& ev : obs::trace_snapshot()) {
    if (std::string(ev.name).rfind(prefix, 0) == 0) out.push_back(ev);
  }
  return out;
}

TEST(Trace, SpanNestingAndThreadMergeGolden) {
  obs::clear_trace();
  obs::enable_tracing();
  {
    obs::Span parent("obs_test/parent");
    { obs::Span c1("obs_test/child1", "step", 1); }
    { obs::Span c2("obs_test/child2", "step", 2); }
  }
  std::thread worker([] { obs::Span w("obs_test/worker"); });
  worker.join();
  obs::disable_tracing();

  const std::vector<obs::SpanEvent> got = spans_with_prefix("obs_test/");
  ASSERT_EQ(got.size(), 4u);

  // The merged snapshot is start-ordered with longer-first tie-breaks, so
  // the enclosing span leads its children, and the worker span (opened
  // after the parent scope closed, on the monotonic clock) comes last.
  EXPECT_STREQ(got[0].name, "obs_test/parent");
  EXPECT_STREQ(got[3].name, "obs_test/worker");

  const obs::SpanEvent& parent = got[0];
  const obs::SpanEvent& worker_span = got[3];
  for (std::size_t i = 1; i <= 2; ++i) {
    const obs::SpanEvent& child = got[i];
    EXPECT_EQ(child.tid, parent.tid) << "children share the parent's thread";
    EXPECT_GE(child.start_ns, parent.start_ns);
    EXPECT_LE(child.start_ns + child.dur_ns, parent.start_ns + parent.dur_ns)
        << "child " << child.name << " not contained in its parent";
  }
  EXPECT_NE(worker_span.tid, parent.tid);
  EXPECT_GE(worker_span.start_ns, parent.start_ns + parent.dur_ns);

  // Numeric payloads survive the ring and the merge.
  EXPECT_STREQ(got[1].arg_name, "step");
  EXPECT_EQ(got[1].arg, 1);
  EXPECT_EQ(got[2].arg, 2);
}

TEST(Trace, DisabledSpanIsInvisibleAndEndIsIdempotent) {
  obs::clear_trace();
  obs::disable_tracing();
  { obs::Span s("obs_test_off/never"); }
  obs::Span explicit_noop(nullptr);
  EXPECT_FALSE(explicit_noop.active());

  obs::enable_tracing();
  obs::Span ended("obs_test_off/ended");
  ended.end();
  ended.end();  // second end must not record a duplicate
  obs::disable_tracing();

  EXPECT_TRUE(spans_with_prefix("obs_test_off/never").empty());
  EXPECT_EQ(spans_with_prefix("obs_test_off/ended").size(), 1u);
}

TEST(Trace, ChromeTraceJsonSchema) {
  obs::clear_trace();
  obs::enable_tracing();
  { obs::Span s("obs_schema/span", "items", 42); }
  obs::disable_tracing();

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();

  EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"obs_schema/span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"crsd\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": "), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"items\": 42}"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\": 0"), std::string::npos);

  // Crude well-formedness: balanced braces/brackets, no trailing comma
  // before a closing bracket.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.find(",]"), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos);
}

TEST(Trace, WriteChromeTraceFileRoundtrip) {
  obs::clear_trace();
  obs::enable_tracing();
  { obs::Span s("obs_file/span"); }
  obs::disable_tracing();

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("crsd-obs-test-" + std::to_string(::getpid()) + ".json"))
          .string();
  ASSERT_TRUE(obs::write_chrome_trace_file(path));
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("obs_file/span"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Trace, DisabledSpansAllocateNothing) {
  obs::disable_tracing();
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    obs::Span s("obs_test/disabled", "i", i);
    obs::Span noop(nullptr);
    (void)s;
    (void)noop;
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "constructing disabled spans must not allocate";
}

TEST(Trace, InternReturnsStablePointers) {
  const char* a = obs::intern("obs_test/interned-name");
  const char* b = obs::intern(std::string("obs_test/interned-") + "name");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "obs_test/interned-name");
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramBasics) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("obs_test.counter");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&c, &reg.counter("obs_test.counter"))
      << "lookups must return the same stable reference";

  obs::Gauge& g = reg.gauge("obs_test.gauge");
  g.set(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.25);

  obs::Histogram& h = reg.histogram("obs_test.hist");
  h.reset();
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_of(0)), 1u);
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_of(1)), 1u);
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_of(2)), 2u);  // {2, 3}
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_of(1024)), 1u);
  EXPECT_EQ(obs::Histogram::bucket_floor(obs::Histogram::bucket_of(1024)),
            1024u);
  EXPECT_EQ(obs::Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_floor(1), 0u);
  EXPECT_EQ(obs::Histogram::bucket_floor(2), 2u);
}

TEST(Metrics, HistogramQuantiles) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty

  // Buckets 0 and 1 hold a single value each, so quantiles there are exact.
  for (int i = 0; i < 10; ++i) h.record(0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  for (int i = 0; i < 90; ++i) h.record(1);
  EXPECT_EQ(h.quantile(0.05), 0.0);
  EXPECT_EQ(h.quantile(0.99), 1.0);

  // Uniform 1..1000: the bucket resolution bounds every quantile within a
  // factor of 2 of the true order statistic, and estimates are monotone.
  h.reset();
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p90, 450.0);
  EXPECT_LE(p90, 1800.0);
  EXPECT_GE(p99, 512.0);  // rank 990 lives in the [512, 1024) bucket
  EXPECT_LT(p99, 1024.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);

  // q is clamped; extremes bracket the recorded range.
  EXPECT_GE(h.quantile(-1.0), 0.0);
  EXPECT_LE(h.quantile(2.0), 1024.0);
}

TEST(Metrics, RegistryJsonShape) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("obs_test.json.counter").reset();
  reg.counter("obs_test.json.counter").add(7);
  reg.gauge("obs_test.json.gauge").set(0.5);
  obs::Histogram& h = reg.histogram("obs_test.json.hist");
  h.reset();
  h.record(5);  // bit_width(5) == 3, bucket floor 4

  const std::string json = reg.json();
  EXPECT_NE(json.find("\"counters\": {"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json.counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json.gauge\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json.hist\": {\"count\": 1, \"sum\": 5, "
                      "\"p50\": 6, \"p90\": 6, \"p99\": 6, "
                      "\"buckets\": {\"4\": 1}}"),
            std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Metrics, InstrumentedSubsystemsReportIntoTheRegistry) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& launches = reg.counter("gpusim.launches");
  obs::Counter& pool_tasks = reg.counter("pool.tasks_executed");
  const std::uint64_t launches_before = launches.value();
  const std::uint64_t tasks_before = pool_tasks.value();

  const Coo<double> a = stencil_5pt_2d(16, 8);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  std::vector<double> x(static_cast<std::size_t>(m.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(m.num_rows()), 0.0);
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  kernels::gpu_spmv_crsd(dev, m, x.data(), y.data());

  ThreadPool pool(2);
  pool.parallel_for(0, 64, [](index_t, index_t, int) {});

  EXPECT_GT(launches.value(), launches_before);
  EXPECT_GT(pool_tasks.value(), tasks_before);
}

// ---------------------------------------------------------------------------
// GpuSpmvOptions through the dispatcher
// ---------------------------------------------------------------------------

TEST(GpuSpmvOptions, WorkGroupSizeReachesTheKernels) {
  const Coo<double> a = stencil_5pt_2d(10, 10);  // 100 rows: padding differs
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y_small(static_cast<std::size_t>(a.num_rows()), 0.0);
  std::vector<double> y_large = y_small;

  kernels::GpuSpmvOptions small;
  small.work_group_size = 64;
  gpusim::Device dev_small(gpusim::DeviceSpec::tesla_c2050());
  const auto r_small = kernels::spmv(dev_small, Format::kEll, a, x.data(),
                                         y_small.data(), small);

  kernels::GpuSpmvOptions large;
  large.work_group_size = 256;
  gpusim::Device dev_large(gpusim::DeviceSpec::tesla_c2050());
  const auto r_large = kernels::spmv(dev_large, Format::kEll, a, x.data(),
                                         y_large.data(), large);

  // 100 rows pad to 2x64 lanes (4 wavefronts) vs 1x256 (8 wavefronts): the
  // option demonstrably reached the launch. Results must not change.
  EXPECT_NE(r_small.counters.wavefronts, r_large.counters.wavefronts);
  EXPECT_EQ(y_small, y_large);
}

TEST(GpuSpmvOptions, CrsdOptionsReachTheKernel) {
  const Coo<double> a = stencil_5pt_2d(16, 8);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y_local(static_cast<std::size_t>(a.num_rows()), 0.0);
  std::vector<double> y_global = y_local;

  kernels::GpuSpmvOptions with_local;
  with_local.crsd_config = CrsdConfig{.mrows = 32};
  with_local.crsd.use_local_memory = true;
  gpusim::Device dev_a(gpusim::DeviceSpec::tesla_c2050());
  const auto r_local = kernels::spmv(dev_a, Format::kCrsd, a, x.data(),
                                         y_local.data(), with_local);

  kernels::GpuSpmvOptions without_local;
  without_local.crsd_config = CrsdConfig{.mrows = 32};
  without_local.crsd.use_local_memory = false;
  gpusim::Device dev_b(gpusim::DeviceSpec::tesla_c2050());
  const auto r_global = kernels::spmv(dev_b, Format::kCrsd, a, x.data(),
                                          y_global.data(), without_local);

  EXPECT_EQ(r_global.counters.local_bytes, 0u);
  EXPECT_GT(r_local.counters.local_bytes, 0u);
  EXPECT_EQ(y_local, y_global);
}

/// RAII environment-variable override.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(GpuSpmvOptions, CrsdDefaultsFromTuningCacheAndExplicitConfigWins) {
  const Coo<double> a = stencil_5pt_2d(16, 8);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y_tuned(static_cast<std::size_t>(a.num_rows()), 0.0);
  std::vector<double> y_explicit = y_tuned;

  // Private tuning cache holding one entry for this structure: mrows 32,
  // local memory off — both observably different from the defaults.
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() /
       ("crsd-obs-tune-" + std::to_string(::getpid())))
          .string();
  ScopedEnv env("CRSD_TUNE_CACHE", cache_dir);
  CrsdConfig tuned;
  tuned.mrows = 32;
  const std::string key = kernels::detail::tune_cache_key(
      gpusim::DeviceSpec::tesla_c2050(), a, kernels::AutotuneSpace{},
      kernels::AutotuneOptions{});
  kernels::detail::tune_cache_store(
      cache_dir, (std::filesystem::path(cache_dir) / (key + ".txt")).string(),
      tuned, /*local_memory=*/false, /*seconds=*/1e-6);

  // Default options consult the cache: the cached local-memory decision
  // must reach the launch.
  gpusim::Device dev_tuned(gpusim::DeviceSpec::tesla_c2050());
  const auto r_tuned =
      kernels::spmv(dev_tuned, Format::kCrsd, a, x.data(), y_tuned.data(),
                        kernels::GpuSpmvOptions{});
  EXPECT_EQ(r_tuned.counters.local_bytes, 0u)
      << "cached tuning (local memory off) was not honored";

  // An explicit CrsdConfig pins the build: local memory keeps its stock
  // default (on), proving the cache was not consulted.
  kernels::GpuSpmvOptions explicit_opts;
  explicit_opts.crsd_config = CrsdConfig{.mrows = 32};
  gpusim::Device dev_explicit(gpusim::DeviceSpec::tesla_c2050());
  const auto r_explicit =
      kernels::spmv(dev_explicit, Format::kCrsd, a, x.data(),
                        y_explicit.data(), explicit_opts);
  EXPECT_GT(r_explicit.counters.local_bytes, 0u);

  EXPECT_EQ(y_tuned, y_explicit);
  std::filesystem::remove_all(cache_dir);
}

}  // namespace
}  // namespace crsd
