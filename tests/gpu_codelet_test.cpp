// End-to-end tests for the runtime-compiled GPU codelet: the compiled
// kernel must produce exactly the same y *and* exactly the same event trace
// (transactions, flops, barriers, cache behaviour) as the interpreted
// kernel it replaces — the strongest equivalence the simulator can express.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "codegen/crsd_gpu_jit.hpp"
#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "kernels/crsd_gpu.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"

namespace crsd::codegen {
namespace {

JitCompiler fresh_compiler() {
  JitCompiler::Options opts;
  opts.cache_dir = (std::filesystem::temp_directory_path() /
                    ("crsd-gpujit-" + std::to_string(::getpid())))
                       .string();
  return JitCompiler(opts);
}

void expect_counters_equal(const gpusim::Counters& a,
                           const gpusim::Counters& b) {
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.alu_slots, b.alu_slots);
  EXPECT_EQ(a.global_load_transactions, b.global_load_transactions);
  EXPECT_EQ(a.global_load_bytes, b.global_load_bytes);
  EXPECT_EQ(a.global_store_transactions, b.global_store_transactions);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.local_bytes, b.local_bytes);
  EXPECT_EQ(a.barriers, b.barriers);
  EXPECT_EQ(a.wavefronts, b.wavefronts);
}

class GpuCodeletSuite : public ::testing::TestWithParam<int> {};

TEST_P(GpuCodeletSuite, CompiledKernelMatchesInterpretedExactly) {
  const auto a = paper_matrix(GetParam()).generate(0.02);
  const auto m = build(a, CrsdConfig{.mrows = 64});
  JitCompiler compiler = fresh_compiler();
  const CrsdGpuJitKernel<double> kernel(m, compiler);

  Rng rng(3);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<double> y_interp(static_cast<std::size_t>(a.num_rows()), -1);
  std::vector<double> y_jit(y_interp.size(), -2);

  gpusim::Device dev1(gpusim::DeviceSpec::tesla_c2050());
  kernels::CrsdGpuOptions interp_opts;
  interp_opts.jit_codelet = true;  // the codelet cost model
  const auto r_interp =
      kernels::gpu_spmv_crsd(dev1, m, x.data(), y_interp.data(), interp_opts);

  gpusim::Device dev2(gpusim::DeviceSpec::tesla_c2050());
  const auto r_jit = kernel.run(dev2, m, x.data(), y_jit.data());

  // Bitwise-identical results (same accumulation order)...
  EXPECT_EQ(y_jit, y_interp);
  // ...and an identical event trace.
  expect_counters_equal(r_jit.counters, r_interp.counters);
  EXPECT_DOUBLE_EQ(r_jit.seconds, r_interp.seconds);
  EXPECT_EQ(dev2.allocated_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Suite, GpuCodeletSuite,
                         ::testing::Values(3, 5, 9, 15, 18, 21),
                         [](const auto& suite_info) {
                           return paper_matrix(suite_info.param).name;
                         });

TEST(GpuCodelet, NoLocalMemoryVariantAlsoMatches) {
  Rng rng(5);
  const auto a = dense_band(2048, 6);
  const auto m = build(a, CrsdConfig{.mrows = 64});
  JitCompiler compiler = fresh_compiler();
  GpuCodeletOptions opts;
  opts.use_local_memory = false;
  const CrsdGpuJitKernel<double> kernel(m, compiler, opts);
  // No barrier calls are generated (the ABI struct still declares the hook).
  EXPECT_EQ(kernel.source().find("h->barrier"), std::string::npos);

  std::vector<double> x(2048, 1.0), y1(2048), y2(2048);
  gpusim::Device dev1(gpusim::DeviceSpec::tesla_c2050());
  kernels::CrsdGpuOptions interp_opts;
  interp_opts.use_local_memory = false;
  const auto ri =
      kernels::gpu_spmv_crsd(dev1, m, x.data(), y1.data(), interp_opts);
  gpusim::Device dev2(gpusim::DeviceSpec::tesla_c2050());
  const auto rj = kernel.run(dev2, m, x.data(), y2.data());
  EXPECT_EQ(y1, y2);
  expect_counters_equal(rj.counters, ri.counters);
}

TEST(GpuCodelet, SinglePrecision) {
  Rng rng(6);
  const auto a = astro_convection(8, 8, 5, true, rng).cast<float>();
  const auto m = build(a, CrsdConfig{.mrows = 32});
  JitCompiler compiler = fresh_compiler();
  const CrsdGpuJitKernel<float> kernel(m, compiler);
  std::vector<float> x(static_cast<std::size_t>(a.num_cols()), 0.5f);
  std::vector<float> want(static_cast<std::size_t>(a.num_rows()));
  std::vector<float> got(want.size());
  gpusim::Device dev1(gpusim::DeviceSpec::tesla_c2050());
  kernels::gpu_spmv_crsd(dev1, m, x.data(), want.data());
  gpusim::Device dev2(gpusim::DeviceSpec::tesla_c2050());
  kernel.run(dev2, m, x.data(), got.data());
  EXPECT_EQ(got, want);
}

TEST(GpuCodelet, SourceEmbedsIndexInformation) {
  const auto a = dense_band(256, 3);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  JitCompiler compiler = fresh_compiler();
  const CrsdGpuJitKernel<double> kernel(m, compiler);
  const std::string& src = kernel.source();
  // The paper's claim: "the generated codelets already contain the index
  // information of nonzeros" — no index arrays in the diagonal phase.
  EXPECT_NE(src.find("_group(const T* dia_val"), std::string::npos);
  EXPECT_NE(src.find("pattern 0"), std::string::npos);
  EXPECT_EQ(src.find("crsd_dia_index"), std::string::npos);
}

}  // namespace
}  // namespace crsd::codegen
