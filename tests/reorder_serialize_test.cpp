// Tests for RCM reordering and binary CRSD serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "core/inspect.hpp"
#include "core/serialize.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"
#include "matrix/reorder.hpp"

namespace crsd {
namespace {

TEST(Permutation, InverseRoundTrip) {
  Permutation p{{2, 0, 3, 1}};
  const auto inv = p.inverse();
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(p.perm[static_cast<std::size_t>(i)])],
              i);
  }
}

TEST(Rcm, ReducesBandwidthOfShuffledBandMatrix) {
  // A banded matrix whose rows were scrambled: RCM must recover (nearly)
  // the band.
  const auto band = dense_band(256, 3);
  Rng rng(7);
  Permutation shuffle{{}};
  shuffle.perm.resize(256);
  for (index_t i = 0; i < 256; ++i) {
    shuffle.perm[static_cast<std::size_t>(i)] = i;
  }
  for (index_t i = 255; i > 0; --i) {
    std::swap(shuffle.perm[static_cast<std::size_t>(i)],
              shuffle.perm[static_cast<std::size_t>(rng.next_index(0, i))]);
  }
  const auto scrambled = permute_symmetric(band, shuffle);
  ASSERT_GT(matrix_bandwidth(scrambled), 50);

  const Permutation rcm = reverse_cuthill_mckee(scrambled);
  const auto restored = permute_symmetric(scrambled, rcm);
  EXPECT_LE(matrix_bandwidth(restored), 8);  // near the original 3
  EXPECT_EQ(restored.nnz(), band.nnz());
}

TEST(Rcm, PermutedSpmvConsistent) {
  // (P A P^T)(P x) = P (A x): solving in the reordered numbering gives the
  // same answers.
  Rng rng(8);
  auto a = broken_diagonals(200, {{5, 0.7, 2}, {-3, 0.9, 1}}, rng);
  const Permutation p = reverse_cuthill_mckee(a);
  const auto b = permute_symmetric(a, p);

  std::vector<double> x(200);
  for (auto& v : x) v = rng.next_double(-1, 1);
  std::vector<double> ax(200), permuted_result(200);
  a.spmv_reference(x.data(), ax.data());
  const auto px = permute_vector(x, p);
  b.spmv_reference(px.data(), permuted_result.data());
  const auto want = permute_vector(ax, p);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NEAR(permuted_result[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Rcm, HandlesDisconnectedComponentsAndIsolatedRows) {
  Coo<double> a(10, 10);
  // Two separate 3-cliques and four isolated diagonal entries.
  for (index_t i : {0, 1, 2}) {
    for (index_t j : {0, 1, 2}) a.add(i, j, 1.0);
  }
  for (index_t i : {7, 8, 9}) {
    for (index_t j : {7, 8, 9}) a.add(i, j, 1.0);
  }
  for (index_t i : {3, 4, 5, 6}) a.add(i, i, 2.0);
  a.canonicalize();
  const Permutation p = reverse_cuthill_mckee(a);
  // Must be a valid permutation of 0..9.
  std::vector<index_t> sorted = p.perm;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
  const auto b = permute_symmetric(a, p);
  EXPECT_LE(matrix_bandwidth(b), 2);
}

TEST(Rcm, MakesScatteredMatrixCrsdFriendly) {
  // The end-to-end story: scrambled band -> many scatter rows in CRSD;
  // after RCM -> clean diagonal patterns.
  const auto band = dense_band(512, 2);
  Rng rng(9);
  Permutation shuffle{{}};
  shuffle.perm.resize(512);
  for (index_t i = 0; i < 512; ++i) {
    shuffle.perm[static_cast<std::size_t>(i)] = i;
  }
  for (index_t i = 511; i > 0; --i) {
    std::swap(shuffle.perm[static_cast<std::size_t>(i)],
              shuffle.perm[static_cast<std::size_t>(rng.next_index(0, i))]);
  }
  const auto scrambled = permute_symmetric(band, shuffle);
  const auto before = build(scrambled, CrsdConfig{.mrows = 32}).stats();
  const auto after =
      build(permute_symmetric(scrambled, reverse_cuthill_mckee(scrambled)),
                 CrsdConfig{.mrows = 32})
          .stats();
  EXPECT_LT(after.num_scatter_rows, before.num_scatter_rows / 4);
}

TEST(Serialize, RoundTripPreservesEverything) {
  Rng rng(10);
  auto a = astro_convection(8, 8, 6, true, rng);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  std::stringstream buf;
  write_crsd(buf, m);
  const CrsdMatrix<double> loaded = read_crsd<double>(buf);

  EXPECT_EQ(loaded.num_rows(), m.num_rows());
  EXPECT_EQ(loaded.mrows(), m.mrows());
  EXPECT_EQ(loaded.num_patterns(), m.num_patterns());
  EXPECT_EQ(loaded.dia_values(), m.dia_values());
  EXPECT_EQ(loaded.scatter_rows(), m.scatter_rows());

  // Reconstruction and SpMV identical.
  const auto back = crsd_to_coo(loaded);
  EXPECT_EQ(back.col_indices(), a.col_indices());
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 0.7);
  std::vector<double> y1(static_cast<std::size_t>(a.num_rows()));
  std::vector<double> y2(y1.size());
  m.spmv(x.data(), y1.data());
  loaded.spmv(x.data(), y2.data());
  EXPECT_EQ(y1, y2);
}

TEST(Serialize, FloatRoundTripAndPrecisionGuard) {
  const auto a = dense_band(128, 2).cast<float>();
  const auto m = build(a, CrsdConfig{.mrows = 16});
  std::stringstream buf;
  write_crsd(buf, m);
  const std::string payload = buf.str();

  std::stringstream read_back(payload);
  const auto loaded = read_crsd<float>(read_back);
  EXPECT_EQ(loaded.dia_values(), m.dia_values());

  std::stringstream wrong_precision(payload);
  EXPECT_THROW(read_crsd<double>(wrong_precision), Error);
}

TEST(Serialize, RejectsGarbageAndTruncation) {
  std::stringstream junk("not a crsd stream at all");
  EXPECT_THROW(read_crsd<double>(junk), Error);

  const auto a = dense_band(64, 1);
  const auto m = build(a, CrsdConfig{.mrows = 16});
  std::stringstream buf;
  write_crsd(buf, m);
  const std::string payload = buf.str();
  std::stringstream truncated(payload.substr(0, payload.size() / 2));
  EXPECT_THROW(read_crsd<double>(truncated), Error);
}

class SerializeSuite : public ::testing::TestWithParam<int> {};

TEST_P(SerializeSuite, SuiteMatricesRoundTrip) {
  const auto a = paper_matrix(GetParam()).generate(0.01);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  std::stringstream buf;
  write_crsd(buf, m);
  const auto loaded = read_crsd<double>(buf);
  EXPECT_EQ(loaded.dia_values(), m.dia_values());
  EXPECT_EQ(loaded.scatter_val(), m.scatter_val());
  EXPECT_EQ(loaded.cum_segments(), m.cum_segments());
}

INSTANTIATE_TEST_SUITE_P(Suite, SerializeSuite,
                         ::testing::Values(3, 5, 9, 18, 21),
                         [](const auto& suite_info) {
                           return paper_matrix(suite_info.param).name;
                         });

}  // namespace
}  // namespace crsd
