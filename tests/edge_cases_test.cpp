// Edge-case tests across the whole stack: empty matrices, single
// rows/columns, extreme offsets, tall/wide rectangles, and boundary lane
// handling in the simulated kernels.
#include <gtest/gtest.h>

#include <vector>

#include "core/build_api.hpp"
#include "common/rng.hpp"
#include "core/dump.hpp"
#include "formats/csr.hpp"
#include "formats/dia.hpp"
#include "formats/ell.hpp"
#include "formats/hyb.hpp"
#include "kernels/gpu_spmv.hpp"

namespace crsd {
namespace {

template <typename M>
void expect_zero_output(const M& m, index_t rows, index_t cols) {
  std::vector<double> x(static_cast<std::size_t>(cols), 3.0);
  std::vector<double> y(static_cast<std::size_t>(rows), -1.0);
  m.spmv(x.data(), y.data());
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCases, EmptyMatrixAllFormats) {
  Coo<double> a(8, 8);
  a.canonicalize();
  EXPECT_EQ(a.nnz(), 0u);
  expect_zero_output(CsrMatrix<double>::from_coo(a), 8, 8);
  expect_zero_output(DiaMatrix<double>::from_coo(a), 8, 8);
  expect_zero_output(EllMatrix<double>::from_coo(a), 8, 8);
  expect_zero_output(HybMatrix<double>::from_coo(a), 8, 8);
  const auto m = build(a, CrsdConfig{.mrows = 4});
  EXPECT_EQ(m.num_patterns(), 1);  // one empty pattern covering everything
  EXPECT_EQ(m.patterns()[0].num_diagonals(), 0);
  expect_zero_output(m, 8, 8);
}

TEST(EdgeCases, EmptyMatrixOnSimulatedGpu) {
  Coo<double> a(128, 128);
  a.canonicalize();
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  std::vector<double> x(128, 1.0), y(128, -1.0);
  const auto m = build(a, CrsdConfig{.mrows = 64});
  kernels::gpu_spmv_crsd(dev, m, x.data(), y.data());
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EdgeCases, OneByOne) {
  Coo<double> a(1, 1);
  a.add(0, 0, 4.0);
  a.canonicalize();
  const auto m = build(a, CrsdConfig{.mrows = 64});
  double x = 2.5, y = 0;
  m.spmv(&x, &y);
  EXPECT_DOUBLE_EQ(y, 10.0);
  // Single entries are scatter points by the paper's rule (fewer than
  // live_min_nnz on the diagonal within the segment).
  EXPECT_EQ(m.num_scatter_rows(), 1);
}

TEST(EdgeCases, SingleColumnMatrix) {
  Coo<double> a(64, 1);
  for (index_t r = 0; r < 64; r += 2) a.add(r, 0, double(r + 1));
  a.canonicalize();
  const auto m = build(a, CrsdConfig{.mrows = 16});
  double x = 2.0;
  std::vector<double> y(64, -1);
  m.spmv(&x, y.data());
  for (index_t r = 0; r < 64; ++r) {
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(r)],
                     r % 2 == 0 ? 2.0 * (r + 1) : 0.0);
  }
}

TEST(EdgeCases, SingleRowMatrix) {
  Coo<double> a(1, 100);
  for (index_t c = 0; c < 100; c += 7) a.add(0, c, 1.0);
  a.canonicalize();
  std::vector<double> x(100, 1.0);
  double y = 0;
  build(a).spmv(x.data(), &y);
  EXPECT_DOUBLE_EQ(y, 15.0);  // ceil(100/7)
  EllMatrix<double>::from_coo(a).spmv(x.data(), &y);
  EXPECT_DOUBLE_EQ(y, 15.0);
}

TEST(EdgeCases, ExtremeCornerOffsets) {
  // Only the two extreme corners populated: offsets ±(n-1).
  Coo<double> a(50, 50);
  a.add(0, 49, 1.0);
  a.add(49, 0, 2.0);
  a.add(25, 25, 3.0);
  a.canonicalize();
  std::vector<double> x(50);
  for (std::size_t i = 0; i < 50; ++i) x[i] = double(i);
  std::vector<double> want(50), got(50);
  a.spmv_reference(x.data(), want.data());
  build(a, CrsdConfig{.mrows = 8}).spmv(x.data(), got.data());
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(got[i], want[i]);
  DiaMatrix<double>::from_coo(a).spmv(x.data(), got.data());
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(got[i], want[i]);
}

TEST(EdgeCases, TallAndWideOnGpuKernels) {
  for (auto [rows, cols] : {std::pair<index_t, index_t>{300, 40},
                            std::pair<index_t, index_t>{40, 300}}) {
    Rng rng(static_cast<std::uint64_t>(rows));
    Coo<double> a(rows, cols);
    for (index_t r = 0; r < rows; ++r) {
      for (int k = 0; k < 3; ++k) {
        a.add(r, rng.next_index(0, cols - 1), rng.next_double(-1, 1));
      }
    }
    a.canonicalize();
    std::vector<double> x(static_cast<std::size_t>(cols), 0.5);
    std::vector<double> want(static_cast<std::size_t>(rows)),
        got(static_cast<std::size_t>(rows));
    a.spmv_reference(x.data(), want.data());
    gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
    kernels::spmv(dev, Format::kCrsd, a, x.data(), got.data());
    for (index_t r = 0; r < rows; ++r) {
      EXPECT_NEAR(got[static_cast<std::size_t>(r)],
                  want[static_cast<std::size_t>(r)], 1e-12);
    }
    kernels::spmv(dev, Format::kEll, a, x.data(), got.data());
    for (index_t r = 0; r < rows; ++r) {
      EXPECT_NEAR(got[static_cast<std::size_t>(r)],
                  want[static_cast<std::size_t>(r)], 1e-12);
    }
  }
}

TEST(EdgeCases, DumpOfEmptyAndScatterOnlyMatrices) {
  Coo<double> empty(4, 4);
  empty.canonicalize();
  std::ostringstream os1;
  dump_crsd(os1, build(empty, CrsdConfig{.mrows = 2}));
  EXPECT_NE(os1.str().find("num_scatter_rows = 0"), std::string::npos);

  Coo<double> lone(4, 4);
  lone.add(2, 0, 5.0);
  lone.canonicalize();
  std::ostringstream os2;
  dump_crsd(os2, build(lone, CrsdConfig{.mrows = 2}));
  EXPECT_NE(os2.str().find("scatter_rowno = {R2}"), std::string::npos);
}

TEST(EdgeCases, LastSegmentPartialOnGpu) {
  // 100 rows with mrows=64: the second work-group has only 36 live lanes.
  const auto a = [&] {
    Coo<double> m(100, 100);
    for (index_t r = 0; r < 100; ++r) m.add(r, r, double(r + 1));
    for (index_t r = 0; r + 1 < 100; ++r) m.add(r, r + 1, 0.5);
    m.canonicalize();
    return m;
  }();
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  std::vector<double> x(100, 1.0), want(100), got(100, -1);
  a.spmv_reference(x.data(), want.data());
  const auto m = build(a, CrsdConfig{.mrows = 64});
  kernels::gpu_spmv_crsd(dev, m, x.data(), got.data());
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(got[i], want[i]);
}

TEST(EdgeCases, DenseMatrixAsCrsd) {
  // Fully dense 40x40: one pattern, one big AD group, zero fill.
  Coo<double> a(40, 40);
  Rng rng(5);
  for (index_t r = 0; r < 40; ++r) {
    for (index_t c = 0; c < 40; ++c) a.add(r, c, rng.next_double(0.1, 1.0));
  }
  a.canonicalize();
  const auto m = build(a, CrsdConfig{.mrows = 40});
  ASSERT_EQ(m.num_patterns(), 1);
  // The two single-entry corner diagonals (±39) fall below the scatter
  // threshold, so rows 0 and 39 move to the scatter part and the pattern
  // keeps the 77 diagonals -38..38 as one adjacent group.
  EXPECT_EQ(m.patterns()[0].num_diagonals(), 77);
  EXPECT_EQ(m.num_scatter_rows(), 2);
  EXPECT_EQ(m.patterns()[0].groups.size(), 1u);
  EXPECT_EQ(m.patterns()[0].groups[0].type, GroupType::kAdjacent);
  std::vector<double> x(40, 1.0), want(40), got(40);
  a.spmv_reference(x.data(), want.data());
  m.spmv(x.data(), got.data());
  for (int i = 0; i < 40; ++i) EXPECT_NEAR(got[i], want[i], 1e-10);
}

}  // namespace
}  // namespace crsd
