// Tests for the CPU roofline model feeding Figs. 11/12 and Table VI.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"
#include "perf/cpu_model.hpp"

namespace crsd::perf {
namespace {

TEST(CpuSystemSpec, XeonPreset) {
  const CpuSystemSpec spec = CpuSystemSpec::xeon_x5550_2s();
  EXPECT_EQ(spec.total_cores(), 8);  // Table IV: 2 sockets x quad-core
  EXPECT_DOUBLE_EQ(spec.clock_ghz, 2.67);
  // Bandwidth scales with threads then saturates.
  EXPECT_LT(spec.bandwidth_gbps(1), spec.bandwidth_gbps(4));
  EXPECT_DOUBLE_EQ(spec.bandwidth_gbps(8), spec.bandwidth_gbps(16));
}

TEST(SweepCosts, OrderingOnScatteredDiagonalMatrix) {
  Rng rng(1);
  const auto a = fem_shell_like(8192, 16, 2, 8, 1.0, rng);
  const auto stats = compute_stats(a);
  const auto crsd = build(a, CrsdConfig{.mrows = 64});
  const SweepCost csr = csr_sweep_cost(stats, 8);
  const SweepCost dia = dia_sweep_cost(stats, 8);
  const SweepCost ell = ell_sweep_cost(stats, 8);
  const SweepCost cr = crsd_sweep_cost(crsd.stats(), a.num_rows(), 8);
  // DIA pads ~133 diagonals against ~13 nnz/row.
  EXPECT_GT(dia.bytes, 5 * csr.bytes);
  EXPECT_GT(dia.bytes, 5 * ell.bytes);
  // CRSD carries values without per-element indices: cheapest stream.
  EXPECT_LT(cr.bytes, csr.bytes);
  EXPECT_LT(cr.bytes, ell.bytes);
}

TEST(SweepCosts, SinglePrecisionHalvesValueStream) {
  const auto a = dense_band(4096, 6);
  const auto stats = compute_stats(a);
  const SweepCost d = csr_sweep_cost(stats, 8);
  const SweepCost s = csr_sweep_cost(stats, 4);
  EXPECT_LT(s.bytes, d.bytes);
  EXPECT_EQ(s.flops, d.flops);
}

TEST(SweepCosts, CrsdUsesActualStreamWidthsFromStats) {
  // A compact build reports its true stream bytes through CrsdStats, and
  // the model must cost those — not the historical "T values + 4-byte
  // indices" assumption.
  Rng rng(1);
  auto a = fem_shell_like(8192, 16, 2, 8, 1.0, rng);
  inject_scatter(a, 200, rng);

  const auto fp64 = build(a, CrsdConfig{.mrows = 64});
  CrsdConfig compact_cfg{.mrows = 64};
  compact_cfg.storage.value_precision = ValuePrecision::kFloat32;
  compact_cfg.storage.narrow_scatter_indices = true;
  const auto fp32 = build(a, compact_cfg);

  const SweepCost full = crsd_sweep_cost(fp64.stats(), a.num_rows(), 8);
  const SweepCost diet = crsd_sweep_cost(fp32.stats(), a.num_rows(), 8);
  // Same slot structure, so identical flops; the value stream halves and
  // the scatter indices drop from 4 to 2 bytes, so bytes must shrink by
  // more than the value-stream halving alone would leave.
  EXPECT_EQ(full.flops, diet.flops);
  EXPECT_LT(diet.bytes, full.bytes);
  const size64_t dia_value_saving = fp64.stats().dia_slots * (8 - 4);
  EXPECT_GT(full.bytes - diet.bytes, dia_value_saving);

  // Delta-compressed scatter columns cost their encoded byte count.
  CrsdConfig delta_cfg{.mrows = 64};
  delta_cfg.storage.delta_scatter_indices = true;
  const auto delta = build(a, delta_cfg);
  ASSERT_EQ(delta.scatter_index_mode(), ScatterIndexMode::kDelta);
  const SweepCost delta_cost = crsd_sweep_cost(delta.stats(), a.num_rows(), 8);
  const size64_t scatter_slots =
      static_cast<size64_t>(fp64.stats().num_scatter_rows) *
      fp64.stats().scatter_width;
  EXPECT_EQ(full.bytes - delta_cost.bytes,
            scatter_slots * 4 - delta.stats().scatter_index_bytes);
}

TEST(SweepCosts, HandBuiltStatsFallBackToUniformWidths) {
  // Stats assembled by hand (no container) carry zero byte fields; the
  // model must then reproduce the historical formula exactly.
  CrsdStats s;
  s.dia_slots = 1000;
  s.num_scatter_rows = 10;
  s.scatter_width = 8;
  const index_t rows = 500;
  const SweepCost c = crsd_sweep_cost(s, rows, 8);
  const size64_t scatter_slots = 10 * 8;
  EXPECT_EQ(c.bytes, 1000 * 8 + scatter_slots * (8 + sizeof(index_t)) +
                         2 * static_cast<size64_t>(rows) * 8);
  EXPECT_EQ(c.flops, 2 * (1000 + scatter_slots));
}

TEST(Roofline, BandwidthBoundScalesWithThreadsThenSaturates) {
  const CpuSystemSpec spec = CpuSystemSpec::xeon_x5550_2s();
  SweepCost cost;
  cost.bytes = 100'000'000;
  cost.flops = 1'000'000;  // clearly bandwidth-bound
  const double t1 = cpu_spmv_seconds(spec, cost, 1, true);
  const double t4 = cpu_spmv_seconds(spec, cost, 4, true);
  const double t8 = cpu_spmv_seconds(spec, cost, 8, true);
  // MKL-calibrated scaling: ~2.2x at saturation (Table VI), so 4 threads
  // already sit near the ceiling.
  EXPECT_GT(t1, 2 * t4);
  EXPECT_GE(t4, t8);
  // Past saturation more threads stop helping.
  EXPECT_NEAR(cpu_spmv_seconds(spec, cost, 16, true), t8, t8 * 0.05);
}

TEST(Roofline, PlausibleMklScaleGflops) {
  // Sanity anchor: MKL CSR SpMV on Nehalem runs ~0.5-2 GFLOPS serial and
  // ~3-8 GFLOPS with 8 threads in double precision.
  const auto& spec = paper_matrix(9);  // kim1
  const auto a = spec.generate(0.1);
  const auto stats = compute_stats(a);
  const CpuSystemSpec cpu = CpuSystemSpec::xeon_x5550_2s();
  const SweepCost cost = csr_sweep_cost(stats, 8);
  const double serial =
      2.0 * double(stats.nnz) / cpu_spmv_seconds(cpu, cost, 1, true) / 1e9;
  const double threaded =
      2.0 * double(stats.nnz) / cpu_spmv_seconds(cpu, cost, 8, true) / 1e9;
  EXPECT_GT(serial, 0.3);
  EXPECT_LT(serial, 2.5);
  EXPECT_GT(threaded, 2.0);
  EXPECT_LT(threaded, 10.0);
}

}  // namespace
}  // namespace crsd::perf
