// Parity and scheduling tests for the vectorized CPU execution engine:
// scalar, vectorized (interior/edge split), parallel, and JIT-compiled SpMV
// must agree on randomized pattern matrices that force edge segments,
// scatter rows, and short final segments; plus unit tests for the
// interior-range computation and the chunked thread-pool scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <vector>

#include "codegen/crsd_jit_kernel.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/build_api.hpp"
#include "matrix/generators.hpp"

namespace crsd {
namespace {

codegen::JitCompiler fresh_compiler() {
  codegen::JitCompiler::Options opts;
  opts.cache_dir = (std::filesystem::temp_directory_path() /
                    ("crsd-vec-test-cache-" + std::to_string(::getpid())))
                       .string();
  return codegen::JitCompiler(opts);
}

/// Random square matrix built from diagonals: a few adjacent clusters (AD
/// groups), a few isolated diagonals, and at least one extreme offset so
/// the first/last segments need clamping (edge segments). Holes are punched
/// into each diagonal so the builder produces several patterns, and scatter
/// rows are injected on demand.
Coo<double> random_pattern_matrix(index_t n, int diag_budget,
                                  std::uint64_t seed, index_t scatter) {
  Rng rng(seed);
  std::set<diag_offset_t> offs;
  offs.insert(0);  // keep the matrix far from singular-empty
  // Edge-forcers: one strongly negative, one strongly positive offset.
  offs.insert(-static_cast<diag_offset_t>(rng.next_index(n / 2, n - 1)));
  offs.insert(static_cast<diag_offset_t>(rng.next_index(n / 2, n - 1)));
  while (static_cast<int>(offs.size()) < diag_budget) {
    if (rng.next_double() < 0.5) {
      // Adjacent cluster of 2-4 diagonals -> AD group (staged x window).
      const diag_offset_t base =
          static_cast<diag_offset_t>(rng.next_index(-24, 24));
      const index_t len = rng.next_index(2, 4);
      for (index_t k = 0; k < len; ++k) offs.insert(base + k);
    } else {
      offs.insert(static_cast<diag_offset_t>(
          rng.next_index(-n / 3, n / 3)));
    }
  }
  Coo<double> a(n, n);
  for (diag_offset_t off : offs) {
    const index_t r0 = std::max<index_t>(0, -off);
    const index_t r1 = std::min<index_t>(n, n - off);
    // A hole band in the middle of some diagonals breaks them into
    // separate live runs -> multiple patterns and idle sections.
    const bool holes = rng.next_double() < 0.4;
    const index_t hole_lo = rng.next_index(r0, std::max(r0, r1 - 1));
    const index_t hole_hi =
        std::min<index_t>(r1, hole_lo + rng.next_index(1, n / 4 + 1));
    for (index_t r = r0; r < r1; ++r) {
      if (holes && r >= hole_lo && r < hole_hi) continue;
      a.add(r, r + off, rng.next_double(-1.0, 1.0));
    }
  }
  if (scatter > 0) inject_scatter(a, scatter, rng);
  a.canonicalize();
  return a;
}

template <Real T>
std::vector<T> random_vector(index_t len, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> x(static_cast<std::size_t>(len));
  for (auto& v : x) v = static_cast<T>(rng.next_double(-1.0, 1.0));
  return x;
}

/// ULP-style tolerance: |g - w| <= tol * (1 + |w|). Scalar vs vectorized in
/// the same translation unit are additionally required to agree bit-for-bit
/// (identical per-row accumulation order).
template <Real T>
void expect_ulp_close(const std::vector<T>& got, const std::vector<T>& want,
                      double tol, const char* label) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_LE(std::abs(double(got[i]) - double(want[i])),
              tol * (1.0 + std::abs(double(want[i]))))
        << label << " row " << i;
  }
}

class VecEngineParity
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {
};

TEST_P(VecEngineParity, ScalarVecParallelJitAgree) {
  const auto [n, mrows, scatter] = GetParam();
  const auto a = random_pattern_matrix(n, 12, 17u * n + mrows, scatter);
  const auto m = build(a, CrsdConfig{.mrows = mrows});

  const auto x = random_vector<double>(a.num_cols(), 7);
  std::vector<double> ref(static_cast<std::size_t>(a.num_rows()));
  a.spmv_reference(x.data(), ref.data());

  std::vector<double> scalar(ref.size(), -1), vec(ref.size(), -1),
      par(ref.size(), -1);
  m.spmv_scalar(x.data(), scalar.data());
  m.spmv(x.data(), vec.data());
  ThreadPool pool(3);
  m.spmv_parallel(pool, x.data(), par.data());

  // Engine vs reference: normal FP tolerance.
  expect_ulp_close(scalar, ref, 1e-10, "scalar vs reference");
  // Same accumulation order, same translation unit: exact agreement.
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(vec[i], scalar[i]) << "vec row " << i;
    ASSERT_EQ(par[i], scalar[i]) << "parallel row " << i;
  }

  if (codegen::JitCompiler::compiler_available()) {
    auto compiler = fresh_compiler();
    const codegen::CrsdJitKernel<double> kernel(m, compiler);
    std::vector<double> jit(ref.size(), -1), jit_par(ref.size(), -1);
    kernel.spmv(m, x.data(), jit.data());
    kernel.spmv_parallel(pool, m, x.data(), jit_par.data());
    // JIT is compiled with its own flags; allow a few ULPs of contraction
    // skew even though in practice it matches bit-for-bit.
    expect_ulp_close(jit, scalar, 1e-13, "jit vs scalar");
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(jit_par[i], jit[i]) << "jit parallel row " << i;
    }
  }
}

// Shapes: short final segment (n % mrows != 0), tiny mrows, scatter-heavy,
// and a scatter-free case.
INSTANTIATE_TEST_SUITE_P(
    Shapes, VecEngineParity,
    ::testing::Values(std::make_tuple(257, 8, index_t{6}),
                      std::make_tuple(301, 3, index_t{10}),
                      std::make_tuple(512, 32, index_t{0}),
                      std::make_tuple(1000, 64, index_t{12}),
                      std::make_tuple(97, 64, index_t{4})));

TEST(VecEngineParity, SinglePrecision) {
  const auto a64 = random_pattern_matrix(400, 10, 99, 8);
  const auto a = a64.cast<float>();
  const auto m = build(a, CrsdConfig{.mrows = 16});
  const auto x = random_vector<float>(a.num_cols(), 3);
  std::vector<float> scalar(static_cast<std::size_t>(a.num_rows())),
      vec(scalar.size());
  m.spmv_scalar(x.data(), scalar.data());
  m.spmv(x.data(), vec.data());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(vec[i], scalar[i]) << "row " << i;
  }
}

TEST(InteriorSegments, TridiagonalSplitsFirstAndLastSegment) {
  const auto a = dense_band(64, 1);  // offsets {-1, 0, 1}
  const auto m = build(a, CrsdConfig{.mrows = 8});
  ASSERT_EQ(m.num_patterns(), 1);
  const auto in = m.interior_segments(0);
  // Row 0 reads column -1 and row 63 reads column 64: the first and last
  // segments are edge, everything between is clamp-free interior.
  EXPECT_EQ(in.begin, 1);
  EXPECT_EQ(in.end, 7);
}

TEST(InteriorSegments, SingleSegmentMatrixIsAllEdge) {
  // One segment covering the whole matrix is simultaneously the first and
  // last segment: its off-diagonals run out of range at both ends, so the
  // interior is empty and the whole product flows through the edge path.
  const auto a = dense_band(16, 1);
  const auto m = build(a, CrsdConfig{.mrows = 16});
  ASSERT_EQ(m.num_patterns(), 1);
  const auto in = m.interior_segments(0);
  EXPECT_EQ(in.begin, in.end);
  const auto x = random_vector<double>(16, 5);
  std::vector<double> ref(16), got(16);
  a.spmv_reference(x.data(), ref.data());
  m.spmv(x.data(), got.data());
  expect_ulp_close(got, ref, 1e-12, "edge-only vs reference");
}

TEST(ParallelForChunked, CoversRangeOnceWithSmallChunks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_chunked(0, 1000, 7,
                            [&](index_t b, index_t e, int tid) {
                              EXPECT_GE(tid, 0);
                              EXPECT_LT(tid, 4);
                              for (index_t i = b; i < e; ++i) hits[i]++;
                            });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForChunked, SingleThreadAndEmptyRanges) {
  ThreadPool pool(1);
  int calls = 0;
  pool.parallel_for_chunked(5, 5, 2,
                            [&](index_t, index_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for_chunked(0, 10, 3, [&](index_t b, index_t e, int tid) {
    EXPECT_EQ(tid, 0);
    calls += e - b;
  });
  EXPECT_EQ(calls, 10);
}

TEST(ParallelForChunked, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for_chunked(0, 100, 5,
                                [&](index_t b, index_t, int) {
                                  if (b >= 50) throw Error("chunk boom");
                                }),
      Error);
  // Pool stays usable afterwards.
  std::atomic<int> total{0};
  pool.parallel_for_chunked(0, 60, 4,
                            [&](index_t b, index_t e, int) {
                              total += static_cast<int>(e - b);
                            });
  EXPECT_EQ(total.load(), 60);
}

}  // namespace
}  // namespace crsd
