// Unit tests for COO canonicalization, reference SpMV, Matrix Market I/O,
// and structure statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "matrix/coo.hpp"
#include "matrix/matrix_market.hpp"
#include "matrix/stats.hpp"

namespace crsd {
namespace {

TEST(Coo, CanonicalizeSortsAndMergesDuplicates) {
  Coo<double> a(3, 3);
  a.add(2, 1, 1.0);
  a.add(0, 0, 2.0);
  a.add(2, 1, 3.0);
  a.add(1, 2, -1.0);
  a.canonicalize();
  ASSERT_EQ(a.nnz(), 3u);
  EXPECT_EQ(a.row_indices(), (std::vector<index_t>{0, 1, 2}));
  EXPECT_EQ(a.col_indices(), (std::vector<index_t>{0, 2, 1}));
  EXPECT_DOUBLE_EQ(a.values()[2], 4.0);  // 1 + 3 merged
}

TEST(Coo, CanonicalizeDropsExplicitZeros) {
  Coo<double> a(2, 2);
  a.add(0, 0, 1.0);
  a.add(0, 1, 1.0);
  a.add(0, 1, -1.0);  // cancels to zero
  a.canonicalize();
  EXPECT_EQ(a.nnz(), 1u);
  Coo<double> b(2, 2);
  b.add(0, 1, 1.0);
  b.add(0, 1, -1.0);
  b.canonicalize(/*keep_zeros=*/true);
  EXPECT_EQ(b.nnz(), 1u);
  EXPECT_DOUBLE_EQ(b.values()[0], 0.0);
}

TEST(Coo, ReferenceSpmvMatchesHandComputation) {
  // [2 0 1; 0 3 0] * [1 2 3]^T = [5, 6]
  Coo<double> a(2, 3);
  a.add(0, 0, 2.0);
  a.add(0, 2, 1.0);
  a.add(1, 1, 3.0);
  a.canonicalize();
  const double x[3] = {1, 2, 3};
  double y[2] = {-7, -7};
  a.spmv_reference(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Coo, CastPreservesStructure) {
  Coo<double> a(2, 2);
  a.add(0, 1, 1.25);
  a.add(1, 0, -2.5);
  a.canonicalize();
  Coo<float> f = a.cast<float>();
  EXPECT_TRUE(f.is_canonical());
  EXPECT_EQ(f.nnz(), 2u);
  EXPECT_FLOAT_EQ(f.values()[0], 1.25f);
}

TEST(MatrixMarket, RoundTripGeneralReal) {
  Coo<double> a(4, 5);
  a.add(0, 0, 1.5);
  a.add(3, 4, -2.25);
  a.add(1, 2, 1e-3);
  a.canonicalize();
  std::stringstream buf;
  write_matrix_market(buf, a);
  Coo<double> b = read_matrix_market(buf);
  EXPECT_EQ(b.num_rows(), 4);
  EXPECT_EQ(b.num_cols(), 5);
  ASSERT_EQ(b.nnz(), a.nnz());
  for (size64_t k = 0; k < a.nnz(); ++k) {
    EXPECT_EQ(b.row_indices()[k], a.row_indices()[k]);
    EXPECT_EQ(b.col_indices()[k], a.col_indices()[k]);
    EXPECT_DOUBLE_EQ(b.values()[k], a.values()[k]);
  }
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 5.0\n"
      "3 3 1.0\n");
  Coo<double> a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 4u);  // (0,0), (1,0), (0,1), (2,2)
  double x[3] = {1, 1, 1};
  double y[3];
  a.spmv_reference(x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
}

TEST(MatrixMarket, SkewSymmetricExpansion) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  Coo<double> a = read_matrix_market(in);
  ASSERT_EQ(a.nnz(), 2u);
  EXPECT_DOUBLE_EQ(a.values()[0], -3.0);  // (0,1) mirrored with sign flip
  EXPECT_DOUBLE_EQ(a.values()[1], 3.0);
}

TEST(MatrixMarket, PatternFieldDefaultsToOnes) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 2\n");
  Coo<double> a = read_matrix_market(in);
  ASSERT_EQ(a.nnz(), 2u);
  EXPECT_DOUBLE_EQ(a.values()[0], 1.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  std::stringstream bad1("not a banner\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(bad1), Error);
  std::stringstream bad2(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n");
  EXPECT_THROW(read_matrix_market(bad2), Error);  // index out of range
  std::stringstream bad3(
      "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(bad3), Error);  // truncated
  std::stringstream bad4(
      "%%MatrixMarket matrix array real general\n2 2\n1.0\n");
  EXPECT_THROW(read_matrix_market(bad4), Error);  // dense unsupported
}

TEST(Stats, DiagonalHistogramAndPaddedSizes) {
  // 4x4 with main diagonal full and one superdiagonal with 2 entries.
  Coo<double> a(4, 4);
  for (index_t i = 0; i < 4; ++i) a.add(i, i, 1.0);
  a.add(0, 1, 1.0);
  a.add(2, 3, 1.0);
  a.canonicalize();
  const StructureStats s = compute_stats(a);
  EXPECT_EQ(s.nnz, 6u);
  ASSERT_EQ(s.num_diagonals(), 2u);
  EXPECT_EQ(s.diagonals[0].offset, 0);
  EXPECT_EQ(s.diagonals[0].nnz, 4u);
  EXPECT_EQ(s.diagonals[0].length, 4u);
  EXPECT_EQ(s.diagonals[1].offset, 1);
  EXPECT_EQ(s.diagonals[1].nnz, 2u);
  EXPECT_EQ(s.diagonals[1].length, 3u);
  EXPECT_EQ(s.dia_padded_elements(), 8u);
  EXPECT_EQ(s.max_nnz_per_row, 2);
  EXPECT_EQ(s.min_nnz_per_row, 1);
  EXPECT_EQ(s.ell_padded_elements(), 8u);
  EXPECT_NEAR(s.dia_efficiency(), 0.75, 1e-12);
}

TEST(Stats, DiagonalLengthRectangular) {
  EXPECT_EQ(diagonal_length(3, 5, 0), 3u);
  EXPECT_EQ(diagonal_length(3, 5, 2), 3u);
  EXPECT_EQ(diagonal_length(3, 5, 4), 1u);
  EXPECT_EQ(diagonal_length(3, 5, -2), 1u);
  EXPECT_EQ(diagonal_length(3, 5, -3), 0u);
  EXPECT_EQ(diagonal_length(5, 3, -4), 1u);
}

}  // namespace
}  // namespace crsd
