// Unit tests for the CRSD core: AD/NAD grouping, the paper's Fig. 2 worked
// example, idle-section fill/break behaviour, scatter extraction, SpMV
// correctness and stats/footprint accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "core/dump.hpp"
#include "matrix/generators.hpp"

namespace crsd {
namespace {

// The matrix of the paper's Fig. 2 (6x9): rows 0-1 carry diagonals
// {0, 2, 3, 5, 7}; rows 2-5 carry {-2, -1, +2} with a hole at (4,3); (5,5)
// is the scatter point v55.
Coo<double> fig2_matrix() {
  Coo<double> a(6, 9);
  auto v = [](index_t r, index_t c) { return 10.0 * r + c + 1.0; };
  // Pattern 1 rows.
  for (index_t r : {0, 1}) {
    for (diag_offset_t off : {0, 2, 3, 5, 7}) a.add(r, r + off, v(r, r + off));
  }
  // Pattern 2 rows: offsets {-2,-1,+2}, (4,3) missing.
  for (index_t r : {2, 3, 4, 5}) {
    a.add(r, r - 2, v(r, r - 2));
    if (r != 4) a.add(r, r - 1, v(r, r - 1));
    a.add(r, r + 2, v(r, r + 2));
  }
  a.add(5, 5, v(5, 5));  // scatter point
  a.canonicalize();
  return a;
}

TEST(GroupDiagonals, PaperExample) {
  // {0,2,3,5,7} -> {(NAD,1),(AD,2),(NAD,2)}  (§II-B worked example)
  const auto groups = group_diagonals({0, 2, 3, 5, 7});
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (DiagonalGroup{GroupType::kNonAdjacent, 1, 0}));
  EXPECT_EQ(groups[1], (DiagonalGroup{GroupType::kAdjacent, 2, 1}));
  EXPECT_EQ(groups[2], (DiagonalGroup{GroupType::kNonAdjacent, 2, 3}));
}

TEST(GroupDiagonals, EdgeCases) {
  EXPECT_TRUE(group_diagonals({}).empty());
  auto one = group_diagonals({5});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].type, GroupType::kNonAdjacent);
  // Fully adjacent run -> single AD group.
  auto band = group_diagonals({-2, -1, 0, 1, 2});
  ASSERT_EQ(band.size(), 1u);
  EXPECT_EQ(band[0], (DiagonalGroup{GroupType::kAdjacent, 5, 0}));
  // Two AD runs separated by one NAD diagonal.
  auto mixed = group_diagonals({0, 1, 5, 8, 9, 10});
  ASSERT_EQ(mixed.size(), 3u);
  EXPECT_EQ(mixed[0], (DiagonalGroup{GroupType::kAdjacent, 2, 0}));
  EXPECT_EQ(mixed[1], (DiagonalGroup{GroupType::kNonAdjacent, 1, 2}));
  EXPECT_EQ(mixed[2], (DiagonalGroup{GroupType::kAdjacent, 3, 3}));
  // Negative-positive adjacency across zero.
  auto cross = group_diagonals({-1, 0, 3});
  ASSERT_EQ(cross.size(), 2u);
  EXPECT_EQ(cross[0].type, GroupType::kAdjacent);
}

TEST(GroupDiagonals, RejectsUnsortedInput) {
  EXPECT_THROW(group_diagonals({3, 1}), Error);
  EXPECT_THROW(group_diagonals({1, 1}), Error);
}

TEST(Pattern, HelpersAndToString) {
  DiagonalPattern p;
  p.offsets = {0, 2, 3, 5, 7};
  p.groups = group_diagonals(p.offsets);
  EXPECT_EQ(pattern_to_string(p), "{(NAD,1),(AD,2),(NAD,2)}");
  EXPECT_EQ(p.max_adjacent_width(), 2);
  EXPECT_NEAR(p.adjacent_fraction(), 2.0 / 5.0, 1e-12);
  EXPECT_EQ(p.slots_per_segment(4), 20u);
}

TEST(Builder, Fig2ReproducesPaperStructure) {
  const auto a = fig2_matrix();
  CrsdConfig cfg;
  cfg.mrows = 2;
  const auto m = build(a, cfg);

  ASSERT_EQ(m.num_patterns(), 2);
  const auto& p0 = m.patterns()[0];
  EXPECT_EQ(p0.start_row, 0);
  EXPECT_EQ(p0.num_segments, 1);
  EXPECT_EQ(p0.offsets, (std::vector<diag_offset_t>{0, 2, 3, 5, 7}));
  EXPECT_EQ(pattern_to_string(p0), "{(NAD,1),(AD,2),(NAD,2)}");

  const auto& p1 = m.patterns()[1];
  EXPECT_EQ(p1.start_row, 2);
  EXPECT_EQ(p1.num_segments, 2);
  EXPECT_EQ(p1.offsets, (std::vector<diag_offset_t>{-2, -1, 2}));
  EXPECT_EQ(pattern_to_string(p1), "{(AD,2),(NAD,1)}");

  // Scatter: exactly row 5, whole row, width 4 (paper's num_scatter_width).
  EXPECT_EQ(m.scatter_rows(), (std::vector<index_t>{5}));
  EXPECT_EQ(m.scatter_width(), 4);
}

TEST(Builder, Fig2InferredTableIII) {
  // Table III of the paper: NRS = {1,2}, NNzRS = {10,6}, SR = {0,2},
  // NDias = {5,3}.
  const auto m = build(fig2_matrix(), CrsdConfig{.mrows = 2});
  ASSERT_EQ(m.num_patterns(), 2);
  EXPECT_EQ(m.patterns()[0].num_segments, 1);
  EXPECT_EQ(m.patterns()[1].num_segments, 2);
  EXPECT_EQ(m.patterns()[0].slots_per_segment(2), 10u);
  EXPECT_EQ(m.patterns()[1].slots_per_segment(2), 6u);
  EXPECT_EQ(m.patterns()[0].start_row, 0);
  EXPECT_EQ(m.patterns()[1].start_row, 2);
  EXPECT_EQ(m.patterns()[0].num_diagonals(), 5);
  EXPECT_EQ(m.patterns()[1].num_diagonals(), 3);
  // Cumulative segment table used by the kernels' group_id search.
  EXPECT_EQ(m.cum_segments(), (std::vector<index_t>{0, 1, 3}));
  EXPECT_EQ(m.pattern_of_segment(0), 0);
  EXPECT_EQ(m.pattern_of_segment(1), 1);
  EXPECT_EQ(m.pattern_of_segment(2), 1);
}

TEST(Builder, Fig2ValueLayoutMatchesFig4) {
  // Keep scatter-row values in the diagonal part (as the paper's Fig. 4
  // does) to compare the value stream literally.
  CrsdConfig cfg;
  cfg.mrows = 2;
  cfg.zero_scatter_rows_in_dia = false;
  const auto m = build(fig2_matrix(), cfg);
  auto v = [](index_t r, index_t c) { return 10.0 * r + c + 1.0; };

  // Pattern 0, segment 0, diagonal-major lanes:
  // (v00,v11),(v02,v13,v03,v14),(v05,v16,v07,v18).
  const double want0[] = {v(0, 0), v(1, 1), v(0, 2), v(1, 3), v(0, 3),
                          v(1, 4), v(0, 5), v(1, 6), v(0, 7), v(1, 8)};
  for (index_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(m.dia_values()[static_cast<std::size_t>(i)], want0[i]);
  }
  // Pattern 1, segment 1 (rows 4-5): {(v42,v53,0,v54),(v46,v57)} — the zero
  // is the filled v43 hole of Fig. 2.
  EXPECT_DOUBLE_EQ(m.dia_values()[m.slot(1, 1, 0, 0)], v(4, 2));
  EXPECT_DOUBLE_EQ(m.dia_values()[m.slot(1, 1, 0, 1)], v(5, 3));
  EXPECT_DOUBLE_EQ(m.dia_values()[m.slot(1, 1, 1, 0)], 0.0);  // filled zero
  EXPECT_DOUBLE_EQ(m.dia_values()[m.slot(1, 1, 1, 1)], v(5, 4));
  EXPECT_DOUBLE_EQ(m.dia_values()[m.slot(1, 1, 2, 0)], v(4, 6));
  EXPECT_DOUBLE_EQ(m.dia_values()[m.slot(1, 1, 2, 1)], v(5, 7));
}

TEST(Builder, Fig2SpmvMatchesReference) {
  const auto a = fig2_matrix();
  for (bool zero_scatter : {true, false}) {
    CrsdConfig cfg;
    cfg.mrows = 2;
    cfg.zero_scatter_rows_in_dia = zero_scatter;
    const auto m = build(a, cfg);
    std::vector<double> x(9);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.1 * double(i) - 0.3;
    std::vector<double> want(6), got(6, -1.0);
    a.spmv_reference(x.data(), want.data());
    m.spmv(x.data(), got.data());
    for (int i = 0; i < 6; ++i) EXPECT_NEAR(got[i], want[i], 1e-12) << i;
  }
}

TEST(Builder, Fig4DumpNotation) {
  CrsdConfig cfg;
  cfg.mrows = 2;
  cfg.zero_scatter_rows_in_dia = false;
  const auto m = build(fig2_matrix(), cfg);
  std::ostringstream os;
  dump_crsd(os, m);
  const std::string s = os.str();
  EXPECT_NE(s.find("num_scatter_rows = 1; num_dia_patterns = 2; "
                   "num_scatter_width = 4;"),
            std::string::npos);
  EXPECT_NE(s.find("{(NAD,1),(AD,2),(NAD,2)},{(AD,2),(NAD,1)}"),
            std::string::npos);
  // Index array: R0, 1 segment, C0 | C2 (AD first only) | C5, C7; then
  // R2, 2 segments, C0 (AD first) | C4.
  EXPECT_NE(s.find("crsd_dia_index = {R0, 1, C0, C2, C5, C7 | R2, 2, C0, C4}"),
            std::string::npos);
  EXPECT_NE(s.find("scatter_rowno = {R5}"), std::string::npos);
}

TEST(Builder, IdleSectionBreaksDiagonal) {
  // A far diagonal live only in the first and last quarters of the matrix:
  // the dead middle must break it into separate patterns, not be filled.
  Coo<double> a(512, 512);
  for (index_t r = 0; r < 512; ++r) a.add(r, r, 2.0);
  for (index_t r = 0; r < 128; ++r) a.add(r, r + 100, 1.0);
  for (index_t r = 384; r < 412; ++r) a.add(r, r + 100, 1.0);
  a.canonicalize();
  CrsdConfig cfg;
  cfg.mrows = 32;
  const auto m = build(a, cfg);
  // Patterns: {0,100} rows 0..127, {0} rows 128..383, {0,100} rows 384..,
  // then possibly {0} tail.
  ASSERT_GE(m.num_patterns(), 3);
  EXPECT_EQ(m.patterns()[0].offsets, (std::vector<diag_offset_t>{0, 100}));
  EXPECT_EQ(m.patterns()[1].offsets, (std::vector<diag_offset_t>{0}));
  EXPECT_EQ(m.patterns()[2].offsets, (std::vector<diag_offset_t>{0, 100}));
  EXPECT_EQ(m.num_scatter_rows(), 0);
}

TEST(Builder, ShortGapIsBridgedWithZeroFill) {
  // One dead segment between two live runs: with fill_max_gap_segments=1
  // the diagonal stays unbroken (a single pattern), with 0 it breaks.
  Coo<double> a(96, 96);
  for (index_t r = 0; r < 96; ++r) a.add(r, r, 2.0);
  for (index_t r = 0; r < 96; ++r) {
    if (r + 3 < 96 && (r < 32 || r >= 64)) a.add(r, r + 3, 1.0);
  }
  a.canonicalize();
  CrsdConfig bridged;
  bridged.mrows = 32;
  bridged.fill_max_gap_segments = 1;
  EXPECT_EQ(build(a, bridged).num_patterns(), 1);
  CrsdConfig broken = bridged;
  broken.fill_max_gap_segments = 0;
  EXPECT_EQ(build(a, broken).num_patterns(), 3);
  // Both must compute the same product.
  std::vector<double> x(96, 1.0), y1(96), y2(96), want(96);
  a.spmv_reference(x.data(), want.data());
  build(a, bridged).spmv(x.data(), y1.data());
  build(a, broken).spmv(x.data(), y2.data());
  for (int i = 0; i < 96; ++i) {
    EXPECT_NEAR(y1[i], want[i], 1e-12);
    EXPECT_NEAR(y2[i], want[i], 1e-12);
  }
}

TEST(Builder, LoneNonzeroBecomesScatterPoint) {
  Coo<double> a(64, 64);
  for (index_t r = 0; r < 64; ++r) a.add(r, r, 2.0);
  a.add(10, 40, 7.0);  // single nonzero on offset 30
  a.canonicalize();
  const auto m = build(a, CrsdConfig{.mrows = 16});
  EXPECT_EQ(m.scatter_rows(), (std::vector<index_t>{10}));
  EXPECT_EQ(m.scatter_width(), 2);  // row 10 = diagonal + scatter point
  ASSERT_EQ(m.num_patterns(), 1);
  EXPECT_EQ(m.patterns()[0].offsets, (std::vector<diag_offset_t>{0}));
}

TEST(Builder, AllScatterMatrixStillCorrect) {
  // Uniform random sparse: essentially nothing is diagonal-structured, so
  // CRSD degenerates to the scatter ELL — and must stay correct.
  Rng rng(31);
  Coo<double> a(128, 128);
  for (int k = 0; k < 400; ++k) {
    a.add(rng.next_index(0, 127), rng.next_index(0, 127),
          rng.next_double(-1, 1));
  }
  a.canonicalize();
  const auto m = build(a, CrsdConfig{.mrows = 32});
  std::vector<double> x(128), want(128), got(128);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(double(i));
  a.spmv_reference(x.data(), want.data());
  m.spmv(x.data(), got.data());
  for (int i = 0; i < 128; ++i) EXPECT_NEAR(got[i], want[i], 1e-12);
}

TEST(Builder, PartialTailSegment) {
  // n not a multiple of mrows: the last segment has fewer lanes.
  const auto a = stencil_5pt_2d(7, 9);  // 63 rows
  const auto m = build(a, CrsdConfig{.mrows = 16});
  EXPECT_EQ(m.num_segments_total(), 4);
  std::vector<double> x(63, 1.0), want(63), got(63, -5.0);
  a.spmv_reference(x.data(), want.data());
  m.spmv(x.data(), got.data());
  for (int i = 0; i < 63; ++i) EXPECT_NEAR(got[i], want[i], 1e-12);
}

TEST(Builder, ParallelSpmvMatchesSerial) {
  Rng rng(32);
  const auto a = astro_convection(8, 8, 6, true, rng);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.next_double(-1, 1);
  std::vector<double> serial(x.size()), parallel(x.size(), -1.0);
  m.spmv(x.data(), serial.data());
  ThreadPool pool(4);
  m.spmv_parallel(pool, x.data(), parallel.data());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel[i], serial[i]);  // identical op order per row
  }
}

TEST(Builder, StatsAccounting) {
  const auto m = build(fig2_matrix(), CrsdConfig{.mrows = 2});
  const CrsdStats st = m.stats();
  EXPECT_EQ(st.num_patterns, 2);
  EXPECT_EQ(st.num_segments, 3);
  EXPECT_EQ(st.dia_slots, 10u + 2u * 6u);
  EXPECT_EQ(st.num_scatter_rows, 1);
  EXPECT_EQ(st.scatter_width, 4);
  EXPECT_EQ(st.scatter_nnz, 4u);
  // Diagonal part holds everything except row 5's entries (zeroed because
  // row 5 is a scatter row): 22 nnz total - 4 scatter-row nnz = 18.
  EXPECT_EQ(st.dia_nnz, 18u);
  EXPECT_GT(st.ad_diag_fraction, 0.0);
  EXPECT_GT(st.fill_ratio(), 0.0);
}

TEST(Builder, FootprintBeatsDiaOnPatternedMatrix) {
  Rng rng(33);
  const auto a = fem_shell_like(4096, 8, 2, 6, 1.0, rng);
  const auto m = build(a, CrsdConfig{.mrows = 64});
  // DIA would pad 53 diagonals to full length; CRSD stores ~nnz values.
  const size64_t dia_bytes = 53u * 4096u * sizeof(double);
  EXPECT_LT(m.footprint_bytes(), dia_bytes / 3);
}

TEST(Builder, MrowsOneAndWholeMatrixSegment) {
  const auto a = fig2_matrix();
  for (index_t mrows : {1, 6, 100}) {
    CrsdConfig cfg;
    cfg.mrows = mrows;
    const auto m = build(a, cfg);
    std::vector<double> x(9, 0.5), want(6), got(6, -1);
    a.spmv_reference(x.data(), want.data());
    m.spmv(x.data(), got.data());
    for (int i = 0; i < 6; ++i) EXPECT_NEAR(got[i], want[i], 1e-12) << mrows;
  }
}

TEST(Builder, RejectsBadConfig) {
  const auto a = fig2_matrix();
  EXPECT_THROW(build(a, CrsdConfig{.mrows = 0}), Error);
  EXPECT_THROW(build(a, CrsdConfig{.live_min_nnz = 0}), Error);
  CrsdConfig bad_fill;
  bad_fill.live_min_fill = 1.5;
  EXPECT_THROW(build(a, bad_fill), Error);
}

}  // namespace
}  // namespace crsd
