// Tests for the inspector–executor SpMM subsystem: ParallelPlan
// partitioning and replay, ExecPlan inspection/invalidation, plan-driven
// SpmmEngine parity (bitwise against the single-vector engine per column),
// the register-blocked JIT SpMM codelet, concurrent JIT cache publication,
// and block CG on top of the batched apply.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "codegen/crsd_jit_kernel.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/build_api.hpp"
#include "core/exec_plan.hpp"
#include "core/update.hpp"
#include "kernels/cpu_spmm.hpp"
#include "matrix/generators.hpp"
#include "solver/block_cg.hpp"
#include "solver/solvers.hpp"

namespace crsd {
namespace {

codegen::JitCompiler fresh_compiler(const char* tag = "spmm") {
  codegen::JitCompiler::Options opts;
  opts.cache_dir = (std::filesystem::temp_directory_path() /
                    ("crsd-" + std::string(tag) + "-test-cache-" +
                     std::to_string(::getpid())))
                       .string();
  return codegen::JitCompiler(opts);
}

/// Same fixture family as cpu_vec_test: adjacent clusters (AD groups),
/// isolated diagonals, extreme offsets forcing edge segments, hole bands
/// breaking diagonals into multiple patterns, optional scatter rows.
Coo<double> random_pattern_matrix(index_t n, int diag_budget,
                                  std::uint64_t seed, index_t scatter) {
  Rng rng(seed);
  std::set<diag_offset_t> offs;
  offs.insert(0);
  offs.insert(-static_cast<diag_offset_t>(rng.next_index(n / 2, n - 1)));
  offs.insert(static_cast<diag_offset_t>(rng.next_index(n / 2, n - 1)));
  while (static_cast<int>(offs.size()) < diag_budget) {
    if (rng.next_double() < 0.5) {
      const diag_offset_t base =
          static_cast<diag_offset_t>(rng.next_index(-24, 24));
      const index_t len = rng.next_index(2, 4);
      for (index_t k = 0; k < len; ++k) offs.insert(base + k);
    } else {
      offs.insert(static_cast<diag_offset_t>(rng.next_index(-n / 3, n / 3)));
    }
  }
  Coo<double> a(n, n);
  for (diag_offset_t off : offs) {
    const index_t r0 = std::max<index_t>(0, -off);
    const index_t r1 = std::min<index_t>(n, n - off);
    const bool holes = rng.next_double() < 0.4;
    const index_t hole_lo = rng.next_index(r0, std::max(r0, r1 - 1));
    const index_t hole_hi =
        std::min<index_t>(r1, hole_lo + rng.next_index(1, n / 4 + 1));
    for (index_t r = r0; r < r1; ++r) {
      if (holes && r >= hole_lo && r < hole_hi) continue;
      a.add(r, r + off, rng.next_double(-1.0, 1.0));
    }
  }
  if (scatter > 0) inject_scatter(a, scatter, rng);
  a.canonicalize();
  return a;
}

template <Real T>
std::vector<T> random_block(index_t len, index_t k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> x(static_cast<std::size_t>(len) * k);
  for (auto& v : x) v = static_cast<T>(rng.next_double(-1.0, 1.0));
  return x;
}

template <Real T>
void expect_bitwise(const std::vector<T>& got, const std::vector<T>& want,
                    const char* label) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(0, std::memcmp(got.data(), want.data(), got.size() * sizeof(T)))
      << label;
}

// ---------------------------------------------------------------------------
// ParallelPlan

TEST(ParallelPlan, StaticPartitionCoversRangeContiguously) {
  const ParallelPlan plan = ParallelPlan::static_partition(3, 17, 4);
  ASSERT_EQ(plan.num_parts(), 4);
  EXPECT_EQ(plan.part_begin(0), 3);
  EXPECT_EQ(plan.part_end(3), 17);
  for (int p = 0; p + 1 < plan.num_parts(); ++p) {
    EXPECT_EQ(plan.part_end(p), plan.part_begin(p + 1));
    EXPECT_LE(plan.part_begin(p), plan.part_end(p));
  }
}

TEST(ParallelPlan, StaticPartitionKeepsEmptyTrailingParts) {
  // Part index == thread id must stay stable even when work runs out.
  const ParallelPlan plan = ParallelPlan::static_partition(0, 2, 5);
  ASSERT_EQ(plan.num_parts(), 5);
  index_t total = 0;
  for (int p = 0; p < plan.num_parts(); ++p) {
    total += plan.part_end(p) - plan.part_begin(p);
  }
  EXPECT_EQ(total, 2);
  EXPECT_EQ(plan.part_end(4), 2);
}

TEST(ParallelPlan, WeightedPartitionBalancesCost) {
  // One element carries half the total cost; its part should not also
  // absorb a long run of the cheap elements.
  std::vector<double> cost(16, 1.0);
  cost[0] = 16.0;
  const ParallelPlan plan = ParallelPlan::weighted_partition(0, 16, 4, cost);
  ASSERT_EQ(plan.num_parts(), 4);
  EXPECT_EQ(plan.part_begin(0), 0);
  EXPECT_EQ(plan.part_end(3), 16);
  // The expensive element's part stays small in index count.
  EXPECT_LE(plan.part_end(0) - plan.part_begin(0), 3);
}

TEST(ParallelPlan, WeightedPartitionZeroCostFallsBackToStatic) {
  const std::vector<double> cost(10, 0.0);
  const ParallelPlan weighted =
      ParallelPlan::weighted_partition(0, 10, 3, cost);
  const ParallelPlan fallback = ParallelPlan::static_partition(0, 10, 3);
  ASSERT_EQ(weighted.num_parts(), fallback.num_parts());
  for (int p = 0; p < weighted.num_parts(); ++p) {
    EXPECT_EQ(weighted.part_begin(p), fallback.part_begin(p));
    EXPECT_EQ(weighted.part_end(p), fallback.part_end(p));
  }
}

TEST(ParallelPlan, FewerItemsThanPartsStillCoversAll) {
  std::vector<double> cost(3, 1.0);
  const ParallelPlan plan = ParallelPlan::weighted_partition(0, 3, 8, cost);
  ASSERT_EQ(plan.num_parts(), 8);
  index_t total = 0;
  for (int p = 0; p < plan.num_parts(); ++p) {
    EXPECT_LE(plan.part_begin(p), plan.part_end(p));
    total += plan.part_end(p) - plan.part_begin(p);
  }
  EXPECT_EQ(total, 3);
}

TEST(ThreadPoolPlan, ReplayVisitsEveryIndexOnceWithStablePartIds) {
  const ParallelPlan plan = ParallelPlan::static_partition(0, 101, 4);
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(101);
  std::vector<std::atomic<int>> part_of(101);
  for (auto& h : hits) h.store(0);
  for (auto& p : part_of) p.store(-1);
  pool.parallel_for(plan, [&](index_t b, index_t e, int part) {
    for (index_t i = b; i < e; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
      part_of[static_cast<std::size_t>(i)].store(part);
    }
  });
  for (index_t i = 0; i < 101; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
  // Part ids reported to the callback are the plan's part indices, so a
  // replay touches each range with the same id every sweep.
  for (int p = 0; p < plan.num_parts(); ++p) {
    for (index_t i = plan.part_begin(p); i < plan.part_end(p); ++i) {
      EXPECT_EQ(part_of[static_cast<std::size_t>(i)].load(), p);
    }
  }
}

TEST(ThreadPoolPlan, MorePartsThanWorkStillRuns) {
  const ParallelPlan plan = ParallelPlan::static_partition(0, 2, 6);
  ThreadPool pool(3);
  std::atomic<int> visited{0};
  pool.parallel_for(plan, [&](index_t b, index_t e, int) {
    visited.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(visited.load(), 2);
}

// ---------------------------------------------------------------------------
// ExecPlan inspection

TEST(ExecPlan, SlicesCoverEverySegmentExactlyOnce) {
  const auto a = random_pattern_matrix(300, 14, 99, 12);
  const auto m = build(a, CrsdConfig{.mrows = 16});
  ExecPlanOptions opts;
  opts.num_threads = 3;
  const auto plan = ExecPlan<double>::inspect(m, opts);
  ASSERT_EQ(plan.num_threads(), 3);

  std::vector<int> seg_hits(static_cast<std::size_t>(m.num_segments_total()),
                            0);
  index_t scatter_covered = 0;
  for (int t = 0; t < plan.num_threads(); ++t) {
    const ThreadSlice& slice = plan.slice(t);
    scatter_covered += slice.scatter_end - slice.scatter_begin;
    for (const PlanStep& step : slice.steps) {
      ASSERT_LT(step.seg_begin, step.seg_end);
      for (index_t g = step.seg_begin; g < step.seg_end; ++g) {
        ++seg_hits[static_cast<std::size_t>(g)];
        // Interior flag must agree with the matrix's own interior ranges.
        const SegmentInterior in = m.interior_segments(step.pattern);
        EXPECT_EQ(step.interior, g >= in.begin && g < in.end)
            << "segment " << g;
      }
    }
  }
  for (std::size_t g = 0; g < seg_hits.size(); ++g) {
    EXPECT_EQ(seg_hits[g], 1) << "segment " << g;
  }
  EXPECT_EQ(scatter_covered, m.num_scatter_rows());
}

TEST(ExecPlan, DiagSourcesStageAdjacentGroupsOnly) {
  const auto a = random_pattern_matrix(256, 12, 7, 0);
  const auto m = build(a, CrsdConfig{.mrows = 16});
  const auto plan = ExecPlan<double>::inspect(m);
  for (std::size_t pi = 0; pi < m.patterns().size(); ++pi) {
    const auto& pat = m.patterns()[pi];
    const PatternPlan& pp = plan.pattern_plan(static_cast<index_t>(pi));
    ASSERT_EQ(pp.diag_src.size(),
              static_cast<std::size_t>(pat.num_diagonals()));
    index_t arena_used = 0;
    for (const auto& grp : pat.groups) {
      const bool staged =
          grp.type == GroupType::kAdjacent && grp.num_diagonals >= 2;
      for (index_t gd = 0; gd < grp.num_diagonals; ++gd) {
        const std::size_t d = static_cast<std::size_t>(grp.first_diagonal + gd);
        EXPECT_EQ(pp.diag_src[d].staged, staged);
        if (staged) {
          EXPECT_EQ(pp.diag_src[d].window, m.mrows() + grp.num_diagonals - 1);
          EXPECT_EQ(pp.diag_src[d].delta, gd);
          EXPECT_EQ(pp.diag_src[d].arena_off, arena_used);
        } else {
          EXPECT_EQ(pp.diag_src[d].delta, pat.offsets[d]);
        }
      }
      if (staged) arena_used += m.mrows() + grp.num_diagonals - 1;
    }
    EXPECT_EQ(pp.arena_elems, arena_used);
    EXPECT_LE(arena_used, plan.max_arena_elems());
  }
}

TEST(ExecPlan, ValueUpdateKeepsPlanValidRebuildInvalidates) {
  auto a = random_pattern_matrix(200, 10, 21, 8);
  auto m = build(a, CrsdConfig{.mrows = 16});
  const auto plan = ExecPlan<double>::inspect(m);
  EXPECT_TRUE(plan.matches(m));

  // Same structure, new values: the plan stays bound.
  Coo<double> a2(a.num_rows(), a.num_cols());
  a2.reserve(a.nnz());
  for (size64_t i = 0; i < a.nnz(); ++i) {
    a2.add(a.row_indices()[i], a.col_indices()[i], a.values()[i] * 2.5);
  }
  a2.mark_canonical();
  update_values(m, a2);
  EXPECT_TRUE(plan.matches(m));
  EXPECT_NO_THROW(plan.check_matches(m));

  // Structurally different matrix: rejected at executor entry.
  const auto b = random_pattern_matrix(200, 11, 22, 8);
  const auto mb = build(b, CrsdConfig{.mrows = 16});
  EXPECT_FALSE(plan.matches(mb));
  EXPECT_THROW(plan.check_matches(mb), Error);
  EXPECT_THROW(SpmmEngine<double>(mb, plan), Error);
}

TEST(ExecPlan, FirstTouchZeroesOwnedRowsOnly) {
  const auto a = random_pattern_matrix(180, 8, 33, 0);
  const auto m = build(a, CrsdConfig{.mrows = 16});
  ExecPlanOptions opts;
  opts.num_threads = 2;
  const auto plan = ExecPlan<double>::inspect(m, opts);
  ThreadPool pool(2);

  const index_t k = 2;
  const size64_t ldy = static_cast<size64_t>(m.num_rows()) + 5;  // padded
  std::vector<double> y(ldy * k, -7.0);
  plan.first_touch(pool, y.data(), k, ldy);
  for (index_t j = 0; j < k; ++j) {
    for (index_t r = 0; r < m.num_rows(); ++r) {
      EXPECT_EQ(y[static_cast<size64_t>(j) * ldy + r], 0.0)
          << "col " << j << " row " << r;
    }
    // Padding between columns is not owned by any thread slice.
    for (size64_t r = m.num_rows(); r < ldy; ++r) {
      EXPECT_EQ(y[static_cast<size64_t>(j) * ldy + r], -7.0);
    }
  }
}

// ---------------------------------------------------------------------------
// SpmmEngine parity

class SpmmParity
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {
};

TEST_P(SpmmParity, ColumnsMatchSingleVectorSweepsBitwise) {
  const auto [n, mrows, scatter] = GetParam();
  const auto a = random_pattern_matrix(n, 12, 31u * n + mrows, scatter);
  const auto m = build(a, CrsdConfig{.mrows = mrows});
  // k = 5 exercises the 4-vector and 1-vector register blocks.
  const index_t k = 5;
  const size64_t ldx = static_cast<size64_t>(m.num_cols());
  const size64_t ldy = static_cast<size64_t>(m.num_rows());
  const auto x = random_block<double>(m.num_cols(), k, 11);

  ExecPlanOptions opts;
  opts.num_threads = 3;
  const auto plan = ExecPlan<double>::inspect(m, opts);
  const SpmmEngine<double> engine(m, plan);

  std::vector<double> y(ldy * k, -1.0), want(ldy * k, -2.0);
  engine.apply_seq(x.data(), ldx, y.data(), ldy, k);
  for (index_t j = 0; j < k; ++j) {
    m.spmv(x.data() + static_cast<size64_t>(j) * ldx,
           want.data() + static_cast<size64_t>(j) * ldy);
  }
  // The SpMM interior kernel makes the same mul-then-fmadd sequence per row
  // as the single-vector engine, so parity is bitwise, not approximate.
  expect_bitwise(y, want, "apply_seq vs per-column spmv");

  // The threaded path partitions work but never splits a row's accumulation.
  ThreadPool pool(3);
  std::vector<double> ypar(ldy * k, -3.0);
  engine.apply(pool, x.data(), ldx, ypar.data(), ldy, k);
  expect_bitwise(ypar, want, "apply vs per-column spmv");

  // Scalar engine agreement (documented bitwise twin of spmv()).
  std::vector<double> yscalar(ldy * k, -4.0);
  for (index_t j = 0; j < k; ++j) {
    m.spmv_scalar(x.data() + static_cast<size64_t>(j) * ldx,
                  yscalar.data() + static_cast<size64_t>(j) * ldy);
  }
  expect_bitwise(y, yscalar, "apply_seq vs per-column spmv_scalar");
}

TEST_P(SpmmParity, FloatColumnsMatchSingleVectorSweepsBitwise) {
  const auto [n, mrows, scatter] = GetParam();
  const auto a64 = random_pattern_matrix(n, 10, 47u * n + mrows, scatter);
  const auto a = a64.cast<float>();
  const auto m = build(a, CrsdConfig{.mrows = mrows});
  const index_t k = 3;  // 2-vector + 1-vector blocks
  const size64_t ldx = static_cast<size64_t>(m.num_cols());
  const size64_t ldy = static_cast<size64_t>(m.num_rows());
  const auto x = random_block<float>(m.num_cols(), k, 13);

  const auto plan = ExecPlan<float>::inspect(m);
  const SpmmEngine<float> engine(m, plan);
  std::vector<float> y(ldy * k, -1.0f), want(ldy * k, -2.0f);
  engine.apply_seq(x.data(), ldx, y.data(), ldy, k);
  for (index_t j = 0; j < k; ++j) {
    m.spmv(x.data() + static_cast<size64_t>(j) * ldx,
           want.data() + static_cast<size64_t>(j) * ldy);
  }
  expect_bitwise(y, want, "float apply_seq vs per-column spmv");
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, SpmmParity,
    ::testing::Values(std::make_tuple(200, 16, 0),    // broken diagonals
                      std::make_tuple(200, 16, 48),   // scatter-heavy
                      std::make_tuple(300, 64, 0),
                      std::make_tuple(300, 64, 64),
                      std::make_tuple(97, 16, 5)));   // non-multiple rows

TEST(SpmmEngine, PlanDrivenSingleVectorMatchesSpmv) {
  const auto a = random_pattern_matrix(250, 12, 3, 20);
  const auto m = build(a, CrsdConfig{.mrows = 16});
  ExecPlanOptions opts;
  opts.num_threads = 2;
  const auto plan = ExecPlan<double>::inspect(m, opts);
  const SpmmEngine<double> engine(m, plan);
  ThreadPool pool(2);

  const auto x = random_block<double>(m.num_cols(), 1, 17);
  std::vector<double> y(static_cast<std::size_t>(m.num_rows()), -1.0);
  std::vector<double> want(y.size(), -2.0);
  engine.spmv(pool, x.data(), y.data());
  m.spmv(x.data(), want.data());
  expect_bitwise(y, want, "plan-driven spmv vs direct spmv");
}

TEST(SpmmEngine, WideBatchCoversAllRegisterBlocks) {
  const auto a = random_pattern_matrix(150, 10, 9, 10);
  const auto m = build(a, CrsdConfig{.mrows = 16});
  const auto plan = ExecPlan<double>::inspect(m);
  const SpmmEngine<double> engine(m, plan);
  const index_t k = 15;  // 8 + 4 + 2 + 1
  const size64_t ldx = static_cast<size64_t>(m.num_cols());
  const size64_t ldy = static_cast<size64_t>(m.num_rows());
  const auto x = random_block<double>(m.num_cols(), k, 23);
  std::vector<double> y(ldy * k, -1.0), want(ldy * k, -2.0);
  engine.apply_seq(x.data(), ldx, y.data(), ldy, k);
  for (index_t j = 0; j < k; ++j) {
    m.spmv(x.data() + static_cast<size64_t>(j) * ldx,
           want.data() + static_cast<size64_t>(j) * ldy);
  }
  expect_bitwise(y, want, "k=15 apply_seq vs per-column spmv");
}

// ---------------------------------------------------------------------------
// JIT SpMM codelet

TEST(JitSpmm, AppliesAllBlockSizesWithinTolerance) {
  if (!codegen::JitCompiler::compiler_available()) {
    GTEST_SKIP() << "no C++ compiler available for JIT";
  }
  const auto a = random_pattern_matrix(160, 8, 41, 12);
  const auto m = build(a, CrsdConfig{.mrows = 16});
  auto compiler = fresh_compiler();
  const auto kernel = codegen::make_jit_spmm_kernel(m, compiler);
  ASSERT_TRUE(kernel.has_value()) << "lint rejected generated SpMM source";

  const index_t k = 5;
  const size64_t ldx = static_cast<size64_t>(m.num_cols());
  const size64_t ldy = static_cast<size64_t>(m.num_rows());
  const auto x = random_block<double>(m.num_cols(), k, 29);
  std::vector<double> y(ldy * k, -1.0), want(ldy * k, -2.0);
  kernel->apply(m, x.data(), ldx, y.data(), ldy, k);
  for (index_t j = 0; j < k; ++j) {
    m.spmv_scalar(x.data() + static_cast<size64_t>(j) * ldx,
                  want.data() + static_cast<size64_t>(j) * ldy);
  }
  // JIT codelets may contract mul+add differently than this TU; the repo
  // convention allows a tiny relative tolerance for compiled kernels.
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_LE(std::abs(y[i] - want[i]), 1e-13 * (1.0 + std::abs(want[i])))
        << "element " << i;
  }
  std::filesystem::remove_all(
      std::filesystem::path(compiler.object_path_for("x")).parent_path());
}

TEST(JitSpmm, LintRejectsSourceForDifferentStructure) {
  const auto a = random_pattern_matrix(160, 8, 41, 12);
  const auto b = random_pattern_matrix(160, 11, 43, 4);
  const auto ma = build(a, CrsdConfig{.mrows = 16});
  const auto mb = build(b, CrsdConfig{.mrows = 16});
  const std::string src_a = codegen::generate_cpu_spmm_codelet_source(ma);
  const std::vector<check::Diagnostic> findings =
      codegen::lint_cpu_spmm_codelet_source(mb, src_a, {8, 4, 2, 1});
  EXPECT_FALSE(findings.empty())
      << "lint accepted a codelet baked for a different structure";
}

TEST(JitSpmm, GeneratedSourcePassesOwnLint) {
  const auto a = random_pattern_matrix(220, 12, 53, 16);
  const auto m = build(a, CrsdConfig{.mrows = 64});
  const std::string src = codegen::generate_cpu_spmm_codelet_source(m);
  const std::vector<check::Diagnostic> findings =
      codegen::lint_cpu_spmm_codelet_source(m, src, {8, 4, 2, 1});
  EXPECT_TRUE(findings.empty()) << check::format_diagnostics(findings);
}

// ---------------------------------------------------------------------------
// JIT cache under concurrency

TEST(JitCache, ConcurrentBuildsOfOneEntryAllSucceed) {
  if (!codegen::JitCompiler::compiler_available()) {
    GTEST_SKIP() << "no C++ compiler available for JIT";
  }
  const std::string source =
      "extern \"C\" int crsd_concurrency_probe(int v) { return v + 41; }\n";
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() /
       ("crsd-jit-race-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(cache_dir);

  // Seed the canonical source path with garbage from a "killed" earlier
  // run: publication must rename over it, never read it.
  {
    codegen::JitCompiler::Options opts;
    opts.cache_dir = cache_dir;
    const codegen::JitCompiler probe(opts);
    std::filesystem::path src_path(probe.object_path_for(source));
    src_path.replace_extension(".cpp");
    std::filesystem::create_directories(src_path.parent_path());
    std::ofstream(src_path) << "this is not C++";
  }

  constexpr int kThreads = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      // One compiler per thread: the cache directory is the shared state
      // under test, not the JitCompiler object.
      codegen::JitCompiler::Options opts;
      opts.cache_dir = cache_dir;
      codegen::JitCompiler compiler(opts);
      const codegen::JitLibrary lib = compiler.compile_and_load(source);
      auto fn = lib.symbol_as<int (*)(int)>("crsd_concurrency_probe");
      if (fn(1) == 42) ok.fetch_add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(ok.load(), kThreads);
  // No temp droppings left behind once every attempt has published.
  for (const auto& entry : std::filesystem::directory_iterator(cache_dir)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << entry.path();
  }
  std::filesystem::remove_all(cache_dir);
}

// ---------------------------------------------------------------------------
// Block CG on the batched apply

TEST(BlockCg, SolvesSpdSystemForMultipleRhs) {
  // SPD tridiagonal (2D Laplacian stencil collapsed to 1D): diag 4,
  // off-diagonals -1 — well-conditioned, so CG converges fast.
  const index_t n = 200;
  Coo<double> a(n, n);
  for (index_t i = 0; i < n; ++i) {
    a.add(i, i, 4.0);
    if (i + 1 < n) {
      a.add(i, i + 1, -1.0);
      a.add(i + 1, i, -1.0);
    }
  }
  a.canonicalize();
  const auto m = build(a, CrsdConfig{.mrows = 16});
  const auto plan = ExecPlan<double>::inspect(m);
  const SpmmEngine<double> engine(m, plan);

  const index_t k = 3;
  const auto x_true = random_block<double>(n, k, 61);
  std::vector<double> b(static_cast<std::size_t>(n) * k, 0.0);
  engine.apply_seq(x_true.data(), n, b.data(), n, k);

  const solver::BlockApplyFn<double> apply =
      [&](const double* xin, size64_t ldx, double* yout, size64_t ldy,
          index_t kk) { engine.apply_seq(xin, ldx, yout, ldy, kk); };
  std::vector<double> x(static_cast<std::size_t>(n) * k, 0.0);
  solver::SolveOptions opts;
  opts.tolerance = 1e-12;
  const solver::BlockSolveResult result =
      solver::block_conjugate_gradient<double>(n, k, apply, b.data(), x.data(),
                                               opts);
  EXPECT_TRUE(result.converged)
      << "residual " << result.max_residual_norm << " after "
      << result.iterations << " iterations";
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(x[i], x_true[i], 1e-8) << "element " << i;
  }
}

TEST(BlockCg, SingleColumnAgreesWithScalarCg) {
  const index_t n = 150;
  Coo<double> a(n, n);
  for (index_t i = 0; i < n; ++i) {
    a.add(i, i, 5.0);
    if (i + 2 < n) {
      a.add(i, i + 2, -1.0);
      a.add(i + 2, i, -1.0);
    }
  }
  a.canonicalize();
  const auto m = build(a, CrsdConfig{.mrows = 16});
  const auto plan = ExecPlan<double>::inspect(m);
  const SpmmEngine<double> engine(m, plan);

  const auto b = random_block<double>(n, 1, 71);
  solver::SolveOptions opts;
  opts.tolerance = 1e-11;

  std::vector<double> x_block(static_cast<std::size_t>(n), 0.0);
  const solver::BlockApplyFn<double> apply =
      [&](const double* xin, size64_t ldx, double* yout, size64_t ldy,
          index_t kk) { engine.apply_seq(xin, ldx, yout, ldy, kk); };
  const auto block_result = solver::block_conjugate_gradient<double>(
      n, 1, apply, b.data(), x_block.data(), opts);

  std::vector<double> x_cg(static_cast<std::size_t>(n), 0.0);
  const solver::ApplyFn<double> apply1 = [&](const double* xin, double* yout) {
    m.spmv(xin, yout);
  };
  const auto cg_result =
      solver::conjugate_gradient<double>(n, apply1, b.data(), x_cg.data(), opts);

  ASSERT_TRUE(block_result.converged);
  ASSERT_TRUE(cg_result.converged);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_NEAR(x_block[static_cast<std::size_t>(i)],
                x_cg[static_cast<std::size_t>(i)], 1e-8);
  }
}

}  // namespace
}  // namespace crsd
