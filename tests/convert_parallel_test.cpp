// Determinism suite for the parallel CRSD construction pipeline: the
// parallel builder must produce bitwise-identical storage to the serial
// reference at every thread count, on every structure shape the builder
// handles (clean diagonals, ragged edges, broken diagonals, scatter-heavy
// random noise, empty and degenerate inputs). Also covers the index_t
// overflow guard (with an injected limit, so the tests need no 2^31-entry
// matrices), the parallel_sort/run_tasks ThreadPool primitives the pipeline
// is built on, and the validate_same_storage oracle itself.
//
// Every suite name here contains "Parallel" on purpose: the TSan CI job
// selects its tests with -R "(ThreadPool|Parallel|...)", so the whole
// determinism suite runs under ThreadSanitizer on every PR, at the thread
// counts of the job's CRSD_BUILD_THREADS matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <vector>

#include "check/validate.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/build_api.hpp"
#include "matrix/generators.hpp"

namespace crsd {
namespace {

Coo<double> random_sparse(index_t n, index_t m, size64_t nnz, int seed) {
  Rng rng(seed);
  Coo<double> a(n, m);
  for (size64_t k = 0; k < nnz; ++k) {
    a.add(rng.next_index(0, n - 1), rng.next_index(0, m - 1),
          rng.next_double(-1.0, 1.0));
  }
  a.canonicalize();
  return a;
}

/// The structure zoo every determinism test sweeps: each entry stresses a
/// different builder path (pure diagonals, ragged edge extension, gap
/// bridging vs breaking, scatter extraction, diagonal-structure-free).
std::vector<Coo<double>> structure_zoo() {
  std::vector<Coo<double>> zoo;
  Rng rng(7);
  zoo.push_back(stencil_9pt_2d(23, 17));
  zoo.push_back(dense_band(300, 3));
  zoo.push_back(full_diagonals(257, {-64, -1, 0, 1, 64}, rng));
  zoo.push_back(broken_diagonals(
      300, {{-40, 0.55, 11}, {0, 1.0, 1}, {40, 0.7, 12}}, rng));
  zoo.push_back(random_sparse(400, 400, 2500, 41));  // scatter-dominated
  zoo.push_back(random_sparse(96, 512, 900, 42));    // wide rectangular
  return zoo;
}

void expect_identical(const CrsdMatrix<double>& ref,
                      const CrsdMatrix<double>& got, const char* what) {
  const auto diags = check::validate_same_storage(ref, got);
  EXPECT_TRUE(diags.empty()) << what << ":\n"
                             << check::format_diagnostics(diags);
}

TEST(ParallelBuild, BitwiseIdenticalAcrossThreadCounts) {
  for (const auto& a : structure_zoo()) {
    for (index_t mrows : {16, 64}) {
      CrsdConfig cfg;
      cfg.mrows = mrows;
      const auto serial = build(a, cfg);
      for (int threads : {2, 4, 8}) {
        ThreadPool pool(threads);
        cfg.threads = threads;
        const auto parallel = build(a, cfg, &pool);
        expect_identical(serial, parallel, "parallel build diverged");
      }
    }
  }
}

TEST(ParallelBuild, BitwiseIdenticalUnderNonDefaultKnobs) {
  Rng rng(24);
  const auto a = broken_diagonals(
      256, {{-30, 0.5, 21}, {0, 0.9, 7}, {30, 0.6, 9}}, rng);
  for (index_t gap : {0, 4}) {
    for (double fill : {0.25, 0.75}) {
      for (bool zero_scatter : {true, false}) {
        CrsdConfig cfg;
        cfg.mrows = 32;
        cfg.fill_max_gap_segments = gap;
        cfg.live_min_fill = fill;
        cfg.zero_scatter_rows_in_dia = zero_scatter;
        const auto serial = build(a, cfg);
        ThreadPool pool(4);
        cfg.threads = 4;
        expect_identical(serial, build(a, cfg, &pool),
                         "knob sweep diverged");
      }
    }
  }
}

TEST(ParallelBuild, EdgeCaseMatrices) {
  ThreadPool pool(4);
  // Empty, single-entry, single-row, and shorter-than-one-segment inputs.
  std::vector<Coo<double>> edges;
  edges.emplace_back(5, 7);  // no nonzeros at all
  {
    Coo<double> one(64, 64);
    one.add(63, 0, 2.5);
    one.canonicalize();
    edges.push_back(std::move(one));
  }
  {
    Coo<double> row(1, 200);
    for (index_t c = 0; c < 200; c += 3) row.add(0, c, double(c + 1));
    row.canonicalize();
    edges.push_back(std::move(row));
  }
  edges.push_back(dense_band(7, 2));  // rows < mrows: one ragged segment
  for (auto& a : edges) {
    a.canonicalize();
    CrsdConfig cfg;
    cfg.mrows = 16;
    const auto serial = build(a, cfg);
    cfg.threads = 4;
    expect_identical(serial, build(a, cfg, &pool), "edge case diverged");
  }
}

// The CI TSan job runs this suite under a CRSD_BUILD_THREADS matrix; this
// test builds at exactly that thread count (default 4) so each matrix leg
// exercises a distinct parallel schedule under the race detector.
TEST(ParallelBuild, EnvThreadCountMatchesSerial) {
  int threads = 4;
  if (const char* env = std::getenv("CRSD_BUILD_THREADS");
      env != nullptr && *env != '\0') {
    threads = std::clamp(std::atoi(env), 1, 16);
  }
  ThreadPool pool(threads);
  for (const auto& a : structure_zoo()) {
    CrsdConfig cfg;
    cfg.mrows = 32;
    const auto serial = build(a, cfg);
    cfg.threads = threads;
    expect_identical(serial, build(a, cfg, &pool),
                     "env thread count diverged");
  }
}

TEST(ParallelBuild, OneThreadPoolFallsBackToSerial) {
  const auto a = stencil_5pt_2d(20, 20);
  CrsdConfig cfg;
  cfg.mrows = 16;
  const auto serial = build(a, cfg);
  ThreadPool pool(1);
  cfg.threads = 8;  // intent says parallel, but the pool is 1 wide
  expect_identical(serial, build(a, cfg, &pool), "1-thread fallback");
}

TEST(ParallelBuild, SameStorageOracleDetectsDifferences) {
  const auto a = dense_band(128, 2);
  const auto m1 = build(a, CrsdConfig{.mrows = 32});
  const auto m2 = build(a, CrsdConfig{.mrows = 64});
  const auto diags = check::validate_same_storage(m1, m2);
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(check::has_code(diags, check::Code::kStorageMismatch));
  // Identity holds reflexively.
  EXPECT_TRUE(check::validate_same_storage(m1, m1).empty());
}

// --- Overflow guard -------------------------------------------------------

TEST(ParallelBuild, OverflowGuardFlagsNnz) {
  const auto diags =
      detail::check_build_limits(/*nnz=*/1001, /*mrows=*/64,
                                 /*patterns=*/nullptr, 0, 0,
                                 /*max_index=*/1000);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, check::Code::kIndexOverflow);
  EXPECT_THROW(detail::throw_on_limit_overflow(diags), check::DiagnosticError);
  try {
    detail::throw_on_limit_overflow(diags);
  } catch (const check::DiagnosticError& e) {
    ASSERT_EQ(e.diagnostics().size(), 1u);
    EXPECT_EQ(e.diagnostics()[0].code, check::Code::kIndexOverflow);
  }
}

TEST(ParallelBuild, OverflowGuardFlagsPatternAndScatterSlots) {
  std::vector<DiagonalPattern> patterns(1);
  patterns[0].num_segments = 1;
  patterns[0].offsets.assign(10, 0);  // 10 diagonals x mrows 100 = 1000 slots
  for (std::size_t i = 0; i < patterns[0].offsets.size(); ++i) {
    patterns[0].offsets[i] = static_cast<diag_offset_t>(i);
  }
  const auto pattern_diags = detail::check_build_limits(
      /*nnz=*/10, /*mrows=*/100, &patterns, 0, 0, /*max_index=*/999);
  ASSERT_EQ(pattern_diags.size(), 1u);
  EXPECT_EQ(pattern_diags[0].code, check::Code::kIndexOverflow);
  EXPECT_EQ(pattern_diags[0].offset, 0);  // names the offending pattern

  const auto ell_diags = detail::check_build_limits(
      /*nnz=*/10, /*mrows=*/100, &patterns,
      /*num_scatter_rows=*/50, /*scatter_width=*/20, /*max_index=*/999);
  ASSERT_EQ(ell_diags.size(), 2u);  // pattern slots + 50*20 ELL slots
  EXPECT_EQ(ell_diags[1].code, check::Code::kIndexOverflow);
}

TEST(ParallelBuild, OverflowGuardPassesNormalMatrices) {
  EXPECT_NO_THROW(build(dense_band(200, 2), CrsdConfig{.mrows = 32}));
  EXPECT_TRUE(detail::check_build_limits(
                  /*nnz=*/std::numeric_limits<index_t>::max(), 64, nullptr, 0,
                  0)
                  .empty());
}

// --- ThreadPool primitives the pipeline is built on -----------------------

TEST(ParallelSort, MatchesStdSortOnUniqueKeys) {
  Rng rng(7);
  std::vector<std::pair<int, int>> keys;
  for (int i = 0; i < 20000; ++i) keys.emplace_back(i, 20000 - i);
  for (std::size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1],
              keys[static_cast<std::size_t>(
                  rng.next_index(0, static_cast<index_t>(i) - 1))]);
  }
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  for (int threads : {1, 2, 4, 8}) {
    auto got = keys;
    ThreadPool pool(threads);
    parallel_sort(pool, got.begin(), got.end(),
                  [](const auto& x, const auto& y) { return x < y; });
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ParallelSort, SmallInputsFallThrough) {
  ThreadPool pool(4);
  std::vector<int> v = {5, 3, 9, 1};
  parallel_sort(pool, v.begin(), v.end(), std::less<int>());
  EXPECT_EQ(v, (std::vector<int>{1, 3, 5, 9}));
  std::vector<int> empty;
  parallel_sort(pool, empty.begin(), empty.end(), std::less<int>());
  EXPECT_TRUE(empty.empty());
}

TEST(ParallelRunTasks, ExecutesEveryTaskOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(257, 0);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { ++hits[i]; });
  }
  pool.run_tasks(tasks);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "task " << i;
  }
  pool.run_tasks({});  // empty set is a no-op
}

TEST(ParallelRunTasks, PropagatesExceptions) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([i] {
      if (i == 17) throw Error("task 17 failed");
    });
  }
  EXPECT_THROW(pool.run_tasks(tasks), Error);
}

}  // namespace
}  // namespace crsd
