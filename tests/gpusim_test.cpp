// Unit tests for the GPU simulator substrate: device allocation, the
// read-only cache, coalescing analysis, counter aggregation, and the timing
// model's qualitative behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/executor.hpp"

namespace crsd::gpusim {
namespace {

TEST(DeviceSpec, TeslaC2050Preset) {
  const DeviceSpec spec = DeviceSpec::tesla_c2050();
  EXPECT_EQ(spec.num_compute_units, 14);  // 448 cores / 32
  EXPECT_EQ(spec.wavefront_size, 32);
  EXPECT_EQ(spec.global_mem_bytes, 3ull << 30);  // Table IV: 3 GB
  EXPECT_DOUBLE_EQ(spec.core_clock_ghz, 1.15);
  EXPECT_DOUBLE_EQ(spec.peak_gflops(true), 515.0);
  EXPECT_DOUBLE_EQ(spec.peak_gflops(false), 1030.0);
}

TEST(Device, AllocationAccountingAndOom) {
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  spec.global_mem_bytes = 1000;
  Device dev(spec);
  const Buffer a = dev.alloc(600);
  EXPECT_EQ(dev.allocated_bytes(), 600u);
  EXPECT_THROW(dev.alloc(500), Error);
  const Buffer b = dev.alloc(400);
  EXPECT_EQ(dev.allocated_bytes(), 1000u);
  dev.free(a);
  EXPECT_EQ(dev.allocated_bytes(), 400u);
  dev.free(b);
  // Buffers have distinct, 128-byte aligned virtual bases.
  Device dev2(spec);
  const Buffer c = dev2.alloc(4);
  const Buffer d = dev2.alloc(4);
  EXPECT_NE(c.vbase, d.vbase);
  EXPECT_EQ(c.vbase % 128, 0u);
  EXPECT_EQ(d.vbase % 128, 0u);
}

TEST(ReadOnlyCache, HitsAfterInsert) {
  ReadOnlyCache cache(1024, 2, 128);  // 8 lines, 2-way, 4 sets
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(127));   // same line
  EXPECT_FALSE(cache.access(128));  // next line
  EXPECT_TRUE(cache.access(130));
}

TEST(ReadOnlyCache, LruEvictionWithinSet) {
  ReadOnlyCache cache(512, 2, 128);  // 4 lines, 2-way, 2 sets
  // Lines 0, 2, 4 all map to set 0 (line % 2 == 0).
  EXPECT_FALSE(cache.access(0 * 128));
  EXPECT_FALSE(cache.access(2 * 128));
  EXPECT_TRUE(cache.access(0 * 128));   // refresh line 0; line 2 is LRU
  EXPECT_FALSE(cache.access(4 * 128));  // evicts line 2
  EXPECT_TRUE(cache.access(0 * 128));
  EXPECT_FALSE(cache.access(2 * 128));  // line 2 was evicted
}

TEST(ReadOnlyCache, ResetClears) {
  ReadOnlyCache cache(1024, 2, 128);
  cache.access(0);
  EXPECT_TRUE(cache.access(0));
  cache.reset();
  EXPECT_FALSE(cache.access(0));
}

// Helper: run one work-group body and return its counters.
template <typename Body>
Counters run_one_group(Body&& body, index_t group_size = 64) {
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  spec.num_compute_units = 1;
  Device dev(spec);
  LaunchConfig cfg;
  cfg.num_groups = 1;
  cfg.group_size = group_size;
  return launch(dev, cfg, body).counters;
}

TEST(Coalescing, ContiguousGatherIsOneTransactionPerWave) {
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  Device dev(spec);
  const Buffer buf = dev.alloc(1 << 20);
  const Counters c = run_one_group([&](WorkGroupCtx& ctx) {
    std::vector<size64_t> idx(64);
    for (int i = 0; i < 64; ++i) idx[static_cast<std::size_t>(i)] = i;
    // 64 lanes x 4-byte elements, contiguous: 2 waves x 1 segment each.
    ctx.global_gather(buf, idx.data(), 64, 4, /*cached=*/false);
  });
  EXPECT_EQ(c.global_load_transactions, 2u);
  EXPECT_EQ(c.global_load_bytes, 2u * 128);
}

TEST(Coalescing, StridedGatherExplodes) {
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  Device dev(spec);
  const Buffer buf = dev.alloc(1 << 20);
  const Counters c = run_one_group([&](WorkGroupCtx& ctx) {
    std::vector<size64_t> idx(32);
    for (int i = 0; i < 32; ++i) {
      idx[static_cast<std::size_t>(i)] = static_cast<size64_t>(i) * 64;
    }
    // Stride 64 * 4B = 256 B >= one segment per lane.
    ctx.global_gather(buf, idx.data(), 32, 4, /*cached=*/false);
  });
  EXPECT_EQ(c.global_load_transactions, 32u);
}

TEST(Coalescing, DuplicateAddressesMergeWithinWave) {
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  Device dev(spec);
  const Buffer buf = dev.alloc(1 << 20);
  const Counters c = run_one_group([&](WorkGroupCtx& ctx) {
    std::vector<size64_t> idx(32, 7);  // all lanes read the same element
    ctx.global_gather(buf, idx.data(), 32, 8, false);
  });
  EXPECT_EQ(c.global_load_transactions, 1u);
}

TEST(Coalescing, BlockReadDoubleElements) {
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  Device dev(spec);
  const Buffer buf = dev.alloc(1 << 20);
  const Counters c = run_one_group([&](WorkGroupCtx& ctx) {
    // 32 lanes x 8 bytes = 256 B = 2 transactions (aligned base).
    ctx.global_read_block(buf, 0, 32, 8);
  });
  EXPECT_EQ(c.global_load_transactions, 2u);
}

TEST(Coalescing, CachedReadsSkipBandwidthOnHit) {
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  Device dev(spec);
  const Buffer buf = dev.alloc(1 << 20);
  const Counters c = run_one_group([&](WorkGroupCtx& ctx) {
    ctx.global_read_block(buf, 0, 32, 4, /*cached=*/true);
    ctx.global_read_block(buf, 0, 32, 4, /*cached=*/true);  // hits
  });
  EXPECT_EQ(c.global_load_transactions, 1u);
  EXPECT_EQ(c.cache_misses, 1u);
  EXPECT_EQ(c.cache_hits, 1u);
}

TEST(Coalescing, ScatterWriteCountsDistinctSegments) {
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  Device dev(spec);
  const Buffer buf = dev.alloc(1 << 20);
  const Counters c = run_one_group([&](WorkGroupCtx& ctx) {
    std::vector<size64_t> idx = {0, 1, 2, 1000, 2000};
    ctx.global_scatter_write(buf, idx.data(), 5, 8);
  });
  // {0,1,2} share a segment; 1000 and 2000 are separate.
  EXPECT_EQ(c.global_store_transactions, 3u);
}

TEST(Launch, WavefrontAccountingAndGroupCoverage) {
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  Device dev(spec);
  LaunchConfig cfg;
  cfg.num_groups = 10;
  cfg.group_size = 96;  // 3 wavefronts per group
  std::atomic<int> calls{0};
  std::vector<char> seen(10, 0);
  const LaunchResult r = launch(dev, cfg, [&](WorkGroupCtx& ctx) {
    ++calls;
    seen[static_cast<std::size_t>(ctx.group_id())] = 1;
    EXPECT_EQ(ctx.local_size(), 96);
  });
  EXPECT_EQ(calls.load(), 10);
  for (char s : seen) EXPECT_EQ(s, 1);
  EXPECT_EQ(r.counters.wavefronts, 30u);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Launch, ParallelPoolMatchesSerialCounters) {
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  Device dev(spec);
  const Buffer buf = dev.alloc(1 << 20);
  LaunchConfig cfg;
  cfg.num_groups = 200;
  cfg.group_size = 64;
  auto body = [&](WorkGroupCtx& ctx) {
    // Group-dependent cached traffic exercises per-CU cache determinism.
    ctx.global_read_block(buf, static_cast<size64_t>(ctx.group_id()) * 16, 64,
                          8, true);
    ctx.flops(64);
  };
  const LaunchResult serial = launch(dev, cfg, body, nullptr);
  ThreadPool pool(4);
  const LaunchResult parallel = launch(dev, cfg, body, &pool);
  EXPECT_EQ(parallel.counters.flops, serial.counters.flops);
  EXPECT_EQ(parallel.counters.global_load_transactions,
            serial.counters.global_load_transactions);
  EXPECT_EQ(parallel.counters.cache_hits, serial.counters.cache_hits);
  EXPECT_DOUBLE_EQ(parallel.seconds, serial.seconds);
}

TEST(Launch, RejectsBadGeometry) {
  Device dev(DeviceSpec::tesla_c2050());
  LaunchConfig cfg;
  cfg.num_groups = 0;
  cfg.group_size = 64;
  EXPECT_THROW(launch(dev, cfg, [](WorkGroupCtx&) {}), Error);
  cfg.num_groups = 1;
  cfg.group_size = 4096;  // > max_workgroup_size
  EXPECT_THROW(launch(dev, cfg, [](WorkGroupCtx&) {}), Error);
}

TEST(TimingModel, BandwidthBoundScalesWithBytes) {
  const DeviceSpec spec = DeviceSpec::tesla_c2050();
  LaunchConfig cfg;
  cfg.num_groups = 1000;
  cfg.group_size = 128;
  Counters a;
  a.wavefronts = 100000;  // saturated
  a.global_load_bytes = 1'000'000'000;  // 1 GB at 144 GB/s ≈ 6.9 ms
  const double t1 = estimate_seconds(spec, a, cfg);
  EXPECT_NEAR(t1, 1.0 / 144.0, 1e-3);
  Counters b = a;
  b.global_load_bytes *= 2;
  EXPECT_GT(estimate_seconds(spec, b, cfg), 1.8 * t1);
}

TEST(TimingModel, DoublePrecisionComputeIsSlower) {
  const DeviceSpec spec = DeviceSpec::tesla_c2050();
  LaunchConfig cfg;
  cfg.num_groups = 100;
  cfg.group_size = 128;
  Counters c;
  c.wavefronts = 100000;
  c.flops = 10'000'000'000ull;  // compute-bound
  cfg.double_precision = true;
  const double t_dp = estimate_seconds(spec, c, cfg);
  cfg.double_precision = false;
  const double t_sp = estimate_seconds(spec, c, cfg);
  EXPECT_NEAR(t_dp / t_sp, 2.0, 0.01);  // launch overhead skews it slightly
}

TEST(TimingModel, LowOccupancyDeratesBandwidth) {
  const DeviceSpec spec = DeviceSpec::tesla_c2050();
  LaunchConfig cfg;
  cfg.num_groups = 1;
  cfg.group_size = 32;
  Counters few;
  few.wavefronts = 1;
  few.global_load_bytes = 100'000'000;
  Counters many = few;
  many.wavefronts = 100000;
  EXPECT_GT(estimate_seconds(spec, few, cfg),
            5.0 * estimate_seconds(spec, many, cfg));
}

TEST(TimingModel, BarriersAddTime) {
  const DeviceSpec spec = DeviceSpec::tesla_c2050();
  LaunchConfig cfg;
  cfg.num_groups = 100;
  cfg.group_size = 64;
  Counters c;
  c.wavefronts = 200;
  c.flops = 1000;
  const double t0 = estimate_seconds(spec, c, cfg);
  c.barriers = 1'000'000;
  EXPECT_GT(estimate_seconds(spec, c, cfg), t0);
}

TEST(LaunchResult, GflopsUsesTrueNnz) {
  LaunchResult r;
  r.seconds = 1e-3;
  EXPECT_NEAR(r.gflops(500'000), 1.0, 1e-9);  // 2*0.5M flops / 1ms = 1 GFLOPS
}

}  // namespace
}  // namespace crsd::gpusim
