// Tests for the simulated GPU SpMV kernels: numerical agreement with the
// COO reference for every format and both precisions, plus the qualitative
// counter properties the paper's evaluation rests on (coalescing, padding
// traffic, divergence, index-load savings, barrier costs).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "kernels/gpu_spmv.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"

namespace crsd::kernels {
namespace {

using gpusim::Device;
using gpusim::DeviceSpec;
using gpusim::LaunchResult;

template <Real T>
std::vector<T> random_vector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = static_cast<T>(rng.next_double(-1.0, 1.0));
  return x;
}

template <Real T>
void expect_matches_reference(const Coo<T>& a, const std::vector<T>& got,
                              const std::vector<T>& x, double tol) {
  std::vector<T> want(static_cast<std::size_t>(a.num_rows()));
  a.spmv_reference(x.data(), want.data());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_LE(std::abs(double(got[i]) - double(want[i])),
              tol * (1.0 + std::abs(double(want[i]))))
        << "row " << i;
  }
}

template <Real T>
void check_format(Format f, const Coo<T>& a, double tol) {
  Device dev(DeviceSpec::tesla_c2050());
  const auto x = random_vector<T>(a.num_cols(), 7);
  std::vector<T> y(static_cast<std::size_t>(a.num_rows()), T(-1));
  SpmvOptions opts;
  opts.crsd_config = CrsdConfig{.mrows = 64};
  spmv(dev, f, a, x.data(), y.data(), opts);
  expect_matches_reference(a, y, x, tol);
  // All buffers must be released.
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

class GpuKernelSuite : public ::testing::TestWithParam<int> {};

TEST_P(GpuKernelSuite, AllFormatsMatchReference) {
  const auto& spec = paper_matrix(GetParam());
  const auto a = spec.generate(0.02);
  for (Format f : {Format::kCsr, Format::kDia, Format::kEll, Format::kHyb,
                   Format::kCoo, Format::kCrsd}) {
    check_format(f, a, 1e-12);
  }
  const auto af = a.template cast<float>();
  for (Format f : {Format::kCsr, Format::kEll, Format::kCrsd}) {
    check_format(f, af, 3e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, GpuKernelSuite,
                         ::testing::Values(1, 3, 5, 7, 9, 15, 18, 21),
                         [](const auto& suite_info) {
                           return paper_matrix(suite_info.param).name;
                         });

TEST(CsrScalarKernel, MatchesReferenceAndDiverges) {
  // Ragged rows: one dense row inside otherwise short rows forces the whole
  // wavefront to iterate max-length steps -> alu_slots > flops.
  Rng rng(3);
  Coo<double> a(256, 256);
  for (index_t r = 0; r < 256; ++r) a.add(r, r, 2.0);
  for (index_t c = 0; c < 200; ++c) a.add(17, c, 0.5);
  a.canonicalize();
  Device dev(DeviceSpec::tesla_c2050());
  const auto m = CsrMatrix<double>::from_coo(a);
  const auto x = random_vector<double>(256, 1);
  std::vector<double> y(256);
  const LaunchResult r = gpu_spmv_csr_scalar(dev, m, x.data(), y.data());
  expect_matches_reference(a, y, x, 1e-12);
  EXPECT_GT(r.counters.alu_slots, r.counters.flops);
}

TEST(CsrVectorKernel, CoalescesBetterThanScalarOnLongRows) {
  const auto a = dense_band(512, 16);  // 33 nnz/row
  Device dev(DeviceSpec::tesla_c2050());
  const auto m = CsrMatrix<double>::from_coo(a);
  const auto x = random_vector<double>(512, 2);
  std::vector<double> y1(512), y2(512);
  const LaunchResult scalar = gpu_spmv_csr_scalar(dev, m, x.data(), y1.data());
  const LaunchResult vec = gpu_spmv_csr_vector(dev, m, x.data(), y2.data());
  expect_matches_reference(a, y1, x, 1e-12);
  expect_matches_reference(a, y2, x, 1e-12);
  EXPECT_LT(vec.counters.global_load_transactions,
            scalar.counters.global_load_transactions / 2);
}

TEST(DiaKernel, PaddedTrafficDwarfsUsefulWorkOnScatteredDiagonals) {
  Rng rng(5);
  // 5 + 24*6 = 149 diagonals at 11 nnz/row: 13x padding, the s3dk shape.
  const auto a = fem_shell_like(4096, 24, 2, 6, 1.0, rng);
  Device dev(DeviceSpec::tesla_c2050());
  const auto dia = DiaMatrix<double>::from_coo(a);
  const auto ell = EllMatrix<double>::from_coo(a);
  const auto x = random_vector<double>(4096, 3);
  std::vector<double> y(4096);
  const LaunchResult rd = gpu_spmv_dia(dev, dia, x.data(), y.data());
  expect_matches_reference(a, y, x, 1e-12);
  const LaunchResult re = gpu_spmv_ell(dev, ell, x.data(), y.data());
  expect_matches_reference(a, y, x, 1e-12);
  // DIA reads every padded diagonal slot: far more bytes than ELL.
  EXPECT_GT(rd.counters.global_load_bytes,
            3 * re.counters.global_load_bytes);
  EXPECT_GT(re.gflops(a.nnz()), rd.gflops(a.nnz()));
}

TEST(CrsdKernel, SavesIndexTrafficVsEll) {
  // Same matrix, same useful flops; CRSD loads no per-element column
  // indices, so its load bytes must be lower than ELL's.
  const auto a = dense_band(8192, 12);
  Device dev(DeviceSpec::tesla_c2050());
  const auto ell = EllMatrix<double>::from_coo(a);
  const auto crsd = build(a, CrsdConfig{.mrows = 64});
  const auto x = random_vector<double>(8192, 4);
  std::vector<double> y(8192);
  const LaunchResult re = gpu_spmv_ell(dev, ell, x.data(), y.data());
  expect_matches_reference(a, y, x, 1e-12);
  const LaunchResult rc = gpu_spmv_crsd(dev, crsd, x.data(), y.data());
  expect_matches_reference(a, y, x, 1e-12);
  EXPECT_LT(rc.counters.global_load_bytes, re.counters.global_load_bytes);
  EXPECT_GT(rc.gflops(a.nnz()), re.gflops(a.nnz()));
}

TEST(CrsdKernel, LocalMemoryStagingPaysBarriers) {
  const auto a = dense_band(4096, 8);  // one wide AD group
  Device dev(DeviceSpec::tesla_c2050());
  const auto m = build(a, CrsdConfig{.mrows = 64});
  const auto x = random_vector<double>(4096, 5);
  std::vector<double> y(4096);
  CrsdGpuOptions with_local;
  with_local.use_local_memory = true;
  CrsdGpuOptions no_local;
  no_local.use_local_memory = false;
  const LaunchResult rl = gpu_spmv_crsd(dev, m, x.data(), y.data(), with_local);
  expect_matches_reference(a, y, x, 1e-12);
  const LaunchResult rn = gpu_spmv_crsd(dev, m, x.data(), y.data(), no_local);
  expect_matches_reference(a, y, x, 1e-12);
  EXPECT_GT(rl.counters.barriers, 0u);
  EXPECT_EQ(rn.counters.barriers, 0u);
  EXPECT_GT(rl.counters.local_bytes, 0u);
}

TEST(CrsdKernel, JitCodeletModelBeatsInterpreted) {
  Rng rng(6);
  const auto a = fem_shell_like(8192, 8, 2, 6, 1.0, rng);
  Device dev(DeviceSpec::tesla_c2050());
  const auto m = build(a, CrsdConfig{.mrows = 64});
  const auto x = random_vector<double>(8192, 6);
  std::vector<double> y(8192);
  CrsdGpuOptions jit;
  jit.jit_codelet = true;
  CrsdGpuOptions interp;
  interp.jit_codelet = false;
  const LaunchResult rj = gpu_spmv_crsd(dev, m, x.data(), y.data(), jit);
  const LaunchResult ri = gpu_spmv_crsd(dev, m, x.data(), y.data(), interp);
  EXPECT_LT(rj.counters.alu_slots, ri.counters.alu_slots);
  EXPECT_LE(rj.counters.global_load_bytes, ri.counters.global_load_bytes);
  EXPECT_GE(rj.gflops(a.nnz()), ri.gflops(a.nnz()));
}

TEST(CrsdKernel, ScatterRowsAreOverwrittenCorrectly) {
  Rng rng(7);
  auto a = dense_band(2048, 2);
  inject_scatter(a, 80, rng);
  Device dev(DeviceSpec::tesla_c2050());
  const auto m = build(a, CrsdConfig{.mrows = 32});
  ASSERT_GT(m.num_scatter_rows(), 0);
  const auto x = random_vector<double>(2048, 8);
  std::vector<double> y(2048);
  gpu_spmv_crsd(dev, m, x.data(), y.data());
  expect_matches_reference(a, y, x, 1e-12);
}

TEST(CrsdKernel, RejectsMrowsNotMultipleOfWavefront) {
  const auto a = dense_band(256, 2);
  Device dev(DeviceSpec::tesla_c2050());
  const auto m = build(a, CrsdConfig{.mrows = 48});
  const auto x = random_vector<double>(256, 9);
  std::vector<double> y(256);
  EXPECT_THROW(gpu_spmv_crsd(dev, m, x.data(), y.data()), Error);
}

TEST(DiaKernel, DeviceOomReproducesAfK101Behaviour) {
  // A device with tiny memory: DIA must throw, ELL must fit — the paper's
  // af_*_k101 double-precision result in miniature.
  Rng rng(10);
  const auto a = fem_shell_like(4096, 16, 2, 10, 1.0, rng);  // 165 diagonals
  DeviceSpec spec = DeviceSpec::tesla_c2050();
  spec.global_mem_bytes = 4 << 20;  // 4 MB
  Device dev(spec);
  const auto x = random_vector<double>(4096, 11);
  std::vector<double> y(4096);
  EXPECT_THROW(spmv(dev, Format::kDia, a, x.data(), y.data()), Error);
  EXPECT_NO_THROW(spmv(dev, Format::kEll, a, x.data(), y.data()));
}

TEST(HybKernel, TailAddsSecondLaunchOverhead) {
  // Heavy-tailed rows force a genuine COO tail.
  Coo<double> a(4096, 4096);
  for (index_t r = 0; r < 4096; ++r) a.add(r, r, 2.0);
  for (index_t r = 0; r < 100; ++r) {
    for (index_t c = 0; c < 50; ++c) a.add(r * 40, c + 100, 0.5);
  }
  a.canonicalize();
  Device dev(DeviceSpec::tesla_c2050());
  const auto m = HybMatrix<double>::from_coo(a);
  ASSERT_GT(m.coo_nnz(), 0u);
  const auto x = random_vector<double>(a.num_cols(), 13);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  const LaunchResult r = gpu_spmv_hyb(dev, m, x.data(), y.data());
  expect_matches_reference(a, y, x, 1e-12);
  EXPECT_GE(r.seconds, 2 * DeviceSpec::tesla_c2050().launch_overhead_seconds);
}

TEST(AllKernels, SingleVsDoubleTimingOrder) {
  // Single precision moves half the value bytes: for a bandwidth-bound
  // kernel the simulated time must drop.
  const auto a = dense_band(16384, 8);
  const auto af = a.cast<float>();
  Device dev(DeviceSpec::tesla_c2050());
  const auto xd = random_vector<double>(a.num_cols(), 14);
  const auto xf = random_vector<float>(a.num_cols(), 14);
  std::vector<double> yd(static_cast<std::size_t>(a.num_rows()));
  std::vector<float> yf(static_cast<std::size_t>(a.num_rows()));
  const auto md = build(a, CrsdConfig{.mrows = 64});
  const auto mf = build(af, CrsdConfig{.mrows = 64});
  const LaunchResult rd = gpu_spmv_crsd(dev, md, xd.data(), yd.data());
  const LaunchResult rf = gpu_spmv_crsd(dev, mf, xf.data(), yf.data());
  EXPECT_LT(rf.seconds, rd.seconds);
  EXPECT_GT(rf.gflops(af.nnz()), rd.gflops(a.nnz()));
}

}  // namespace
}  // namespace crsd::kernels
