// Structural invariants over the whole suite: statistics consistency,
// CRSD accounting identities, HYB split optimality, and builder/pattern
// coherence — checked for all 23 matrices.
#include <gtest/gtest.h>

#include <numeric>

#include "core/build_api.hpp"
#include "formats/hyb.hpp"
#include "matrix/paper_suite.hpp"
#include "matrix/stats.hpp"

namespace crsd {
namespace {

class SuiteInvariants : public ::testing::TestWithParam<int> {};

TEST_P(SuiteInvariants, StatsAreInternallyConsistent) {
  const auto a = paper_matrix(GetParam()).generate(0.02);
  const StructureStats s = compute_stats(a);
  // Per-diagonal nnz sums to the total.
  size64_t sum = 0;
  for (const auto& d : s.diagonals) {
    sum += d.nnz;
    EXPECT_LE(d.nnz, d.length);
    EXPECT_EQ(d.length, diagonal_length(s.num_rows, s.num_cols, d.offset));
  }
  EXPECT_EQ(sum, s.nnz);
  // Padded sizes dominate the true nonzero count.
  EXPECT_GE(s.dia_padded_elements(), s.nnz);
  EXPECT_GE(s.ell_padded_elements(), s.nnz);
  EXPECT_LE(s.min_nnz_per_row, s.avg_nnz_per_row + 1e-9);
  EXPECT_GE(s.max_nnz_per_row + 1e-9, s.avg_nnz_per_row);
}

TEST_P(SuiteInvariants, CrsdAccountingIdentities) {
  const auto a = paper_matrix(GetParam()).generate(0.02);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  const CrsdStats st = m.stats();
  // Every true nonzero lives exactly once: diagonal part + scatter part.
  EXPECT_EQ(st.dia_nnz + st.scatter_nnz, a.nnz());
  // Slot count equals the per-pattern sum of the location formula.
  size64_t slots = 0;
  for (const auto& p : m.patterns()) {
    slots += static_cast<size64_t>(p.num_segments) *
             p.slots_per_segment(m.mrows());
  }
  EXPECT_EQ(slots, st.dia_slots);
  EXPECT_EQ(m.dia_values().size(), slots);
  // Pattern runs tile the segment range exactly.
  EXPECT_EQ(m.cum_segments().front(), 0);
  EXPECT_EQ(m.cum_segments().back(), m.num_segments_total());
  // AD fraction is a fraction.
  EXPECT_GE(st.ad_diag_fraction, 0.0);
  EXPECT_LE(st.ad_diag_fraction, 1.0);
}

TEST_P(SuiteInvariants, PatternsAreWellFormed) {
  const auto a = paper_matrix(GetParam()).generate(0.02);
  const auto m = build(a, CrsdConfig{.mrows = 32});
  for (const auto& p : m.patterns()) {
    // Offsets strictly ascending, groups partition them in order.
    for (std::size_t i = 1; i < p.offsets.size(); ++i) {
      EXPECT_LT(p.offsets[i - 1], p.offsets[i]);
    }
    index_t covered = 0;
    for (const auto& g : p.groups) {
      EXPECT_EQ(g.first_diagonal, covered);
      EXPECT_GE(g.num_diagonals, 1);
      if (g.type == GroupType::kAdjacent) {
        EXPECT_GE(g.num_diagonals, 2);
        for (index_t d = 1; d < g.num_diagonals; ++d) {
          EXPECT_EQ(p.offsets[static_cast<std::size_t>(g.first_diagonal + d)],
                    p.offsets[static_cast<std::size_t>(g.first_diagonal + d -
                                                       1)] +
                        1);
        }
      }
      covered += g.num_diagonals;
    }
    EXPECT_EQ(covered, p.num_diagonals());
  }
}

TEST_P(SuiteInvariants, HybSplitIsLocallyOptimal) {
  const auto a = paper_matrix(GetParam()).generate(0.02);
  const index_t k = HybMatrix<double>::default_split_width(a);
  // Cost model: rows*K + 3*coo_nnz(K); the chosen K must not lose to K±1.
  auto cost_at = [&](index_t width) {
    if (width < 0) return std::numeric_limits<double>::infinity();
    std::vector<index_t> row_nnz(static_cast<std::size_t>(a.num_rows()), 0);
    for (index_t r : a.row_indices()) {
      ++row_nnz[static_cast<std::size_t>(r)];
    }
    size64_t coo = 0;
    for (index_t w : row_nnz) {
      if (w > width) coo += static_cast<size64_t>(w - width);
    }
    return double(a.num_rows()) * double(width) + 3.0 * double(coo);
  };
  EXPECT_LE(cost_at(k), cost_at(k - 1) + 1e-6);
  EXPECT_LE(cost_at(k), cost_at(k + 1) + 1e-6);
}

TEST_P(SuiteInvariants, FootprintOrderingSane) {
  const auto a = paper_matrix(GetParam()).generate(0.02);
  const auto m = build(a, CrsdConfig{.mrows = 64});
  // CRSD's footprint is at least the raw value payload and at most DIA's.
  EXPECT_GE(m.footprint_bytes(), a.nnz() * sizeof(double));
  const auto s = compute_stats(a);
  EXPECT_LE(m.footprint_bytes(),
            s.dia_padded_elements() * sizeof(double) +
                s.num_diagonals() * sizeof(index_t) +
                2 * a.nnz() * (sizeof(double) + sizeof(index_t)));
}

INSTANTIATE_TEST_SUITE_P(Suite, SuiteInvariants, ::testing::Range(1, 24),
                         [](const auto& suite_info) {
                           return paper_matrix(suite_info.param).name;
                         });

}  // namespace
}  // namespace crsd
