// Static kernel-access analyzer suite: clean baselines prove every storage
// mode and geometry toggle safe with zero findings; the coalescing replay
// reproduces the simulator's measured counters and seconds exactly; and each
// planted defect class (unclamped edge read, overlapping ExecPlan partition,
// truncated delta byte range, divergent barrier, duplicate scatter target)
// is refuted by precisely the matching diagnostic.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/analyze.hpp"
#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "core/exec_plan.hpp"
#include "gpusim/device.hpp"
#include "kernels/crsd_gpu.hpp"
#include "matrix/generators.hpp"
#include "perf/cpu_model.hpp"

namespace crsd::analysis {
namespace {

using check::Code;
using check::has_code;

/// Every storage mode of the bandwidth bench, fp64 baseline first.
const std::vector<StorageOptions>& all_modes() {
  static const std::vector<StorageOptions> modes = {
      {},
      {ValuePrecision::kNative, true, false},
      {ValuePrecision::kNative, false, true},
      {ValuePrecision::kFloat32, true, false},
      {ValuePrecision::kFloat32, false, true},
      {ValuePrecision::kFloat16, true, false},
  };
  return modes;
}

/// Structured + scatter mix: an AD run {-1, 0, 1} (staged through local
/// memory), far NAD diagonals ±96 with edge overhang (the clamp matters),
/// broken runs (multiple patterns), and injected scatter rows.
Coo<double> mixed_matrix() {
  Rng rng(7);
  auto a = broken_diagonals(
      700, {{-96, 0.55, 4}, {-1, 1.0, 1}, {0, 1.0, 1}, {1, 0.9, 2},
            {96, 0.6, 5}},
      rng);
  inject_scatter(a, 60, rng);
  return a;
}

CrsdMatrix<double> build_mode(const StorageOptions& s, index_t mrows = 64) {
  CrsdConfig cfg;
  cfg.mrows = mrows;
  cfg.storage = s;
  return build(mixed_matrix(), cfg);
}

gpusim::LaunchResult measure(const CrsdMatrix<double>& m,
                             const AnalyzeOptions& aopts) {
  // Fresh device: the model assumes the allocator state of an unused device
  // (base addresses feed the cache set mapping).
  gpusim::Device dev(aopts.spec);
  Rng rng(2026);
  std::vector<double> x(static_cast<std::size_t>(m.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  std::vector<double> y(static_cast<std::size_t>(m.num_rows()));
  kernels::CrsdGpuOptions gopts;
  gopts.use_local_memory = aopts.use_local_memory;
  gopts.jit_codelet = aopts.jit_codelet;
  return kernels::gpu_spmv_crsd(dev, m, x.data(), y.data(), gopts);
}

TEST(Analysis, CleanAcrossStorageModesAndGeometry) {
  for (const auto& mode : all_modes()) {
    const auto m = build_mode(mode);
    for (const bool local : {true, false}) {
      for (const bool jit : {true, false}) {
        AnalyzeOptions opts;
        opts.use_local_memory = local;
        opts.jit_codelet = jit;
        const AnalysisReport rep = analyze_crsd_launch(m, opts);
        EXPECT_TRUE(rep.clean())
            << "mode vp=" << int(mode.value_precision) << " local=" << local
            << " jit=" << jit << ":\n"
            << check::format_diagnostics(rep.diagnostics);
      }
    }
  }
}

TEST(Analysis, ReplayMatchesMeasuredCountersExactly) {
  for (const auto& mode : all_modes()) {
    const auto m = build_mode(mode);
    for (const bool local : {true, false}) {
      AnalyzeOptions opts;
      opts.use_local_memory = local;
      const CoalescingReport rep =
          predict_crsd_counters(build_launch_model(m, opts));
      const gpusim::LaunchResult launch = measure(m, opts);
      const auto& c = launch.counters;
      EXPECT_EQ(rep.counters.global_load_transactions,
                c.global_load_transactions);
      EXPECT_EQ(rep.counters.global_store_transactions,
                c.global_store_transactions);
      EXPECT_EQ(rep.counters.global_load_bytes, c.global_load_bytes);
      EXPECT_EQ(rep.counters.global_store_bytes, c.global_store_bytes);
      EXPECT_EQ(rep.counters.cache_hits, c.cache_hits);
      EXPECT_EQ(rep.counters.cache_misses, c.cache_misses);
      EXPECT_EQ(rep.counters.local_bytes, c.local_bytes);
      EXPECT_EQ(rep.counters.barriers, c.barriers);
      EXPECT_EQ(rep.counters.wavefronts, c.wavefronts);
      // The replay attributes predication differently inside a diagonal but
      // preserves the issue-slot total, which is what the timing model uses.
      EXPECT_EQ(rep.counters.flops + rep.counters.alu_slots,
                c.flops + c.alu_slots);
      EXPECT_DOUBLE_EQ(rep.predicted_seconds, launch.seconds);
    }
  }
}

TEST(Analysis, PredictorFeedsPerfModel) {
  const auto m = build_mode(all_modes()[3]);  // fp32+i16 headline mode
  const AnalyzeOptions opts;
  const CoalescingReport rep =
      predict_crsd_counters(build_launch_model(m, opts));
  EXPECT_DOUBLE_EQ(
      perf::predict_crsd_spmv_seconds(opts.spec, rep.counters,
                                      /*double_precision=*/true),
      rep.predicted_seconds);
  EXPECT_DOUBLE_EQ(rep.predicted_seconds, measure(m, opts).seconds);
}

TEST(Analysis, PerPatternTrafficSumsToTotals) {
  const auto m = build_mode(all_modes()[0]);
  const CoalescingReport rep =
      predict_crsd_counters(build_launch_model(m, {}));
  ASSERT_FALSE(rep.per_pattern.empty());
  size64_t loads = 0, stores = 0, wavefronts = 0;
  for (const auto& pt : rep.per_pattern) {
    loads += pt.load_transactions;
    stores += pt.store_transactions;
    wavefronts += pt.wavefronts;
    EXPECT_GE(pt.transactions_per_wavefront(), 0.0);
  }
  EXPECT_EQ(loads, rep.counters.global_load_transactions);
  EXPECT_EQ(stores, rep.counters.global_store_transactions);
  EXPECT_EQ(wavefronts, rep.counters.wavefronts);
}

// --- Mutation fixtures: each planted defect is flagged statically. -------

TEST(AnalysisMutation, UnclampedEdgeReadIsRefuted) {
  const auto m = build_mode(all_modes()[0]);
  LaunchModel lm = build_launch_model(m, {});
  ASSERT_TRUE(analyze_model(lm).empty());
  // Model a kernel that skips the x clamp: the ±96 diagonals overhang the
  // column range at the edges, so some pattern's raw read interval must
  // escape [0, num_cols).
  for (auto& pm : lm.patterns) pm.clamp_x = false;
  const auto diags = analyze_model(lm);
  EXPECT_TRUE(has_code(diags, Code::kGlobalOutOfBounds))
      << check::format_diagnostics(diags);
}

TEST(AnalysisMutation, OverlappingPlanPartitionIsRefuted) {
  const auto m = build_mode(all_modes()[0]);
  const auto plan = ExecPlan<double>::inspect(m, {.num_threads = 4});
  LaunchModel lm = build_launch_model(m, {});
  attach_exec_plan(lm, plan, m);
  ASSERT_TRUE(analyze_model(lm).empty()) << "clean plan must verify";

  // Extend one thread's segment run by one: it now either overlaps the next
  // thread's run or overruns the segment count — both break disjoint cover.
  ASSERT_TRUE(lm.plan.has_value());
  bool mutated = false;
  for (auto& slice : *lm.plan) {
    if (!slice.seg_runs.empty()) {
      slice.seg_runs.back()[1] += 1;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  const auto diags = analyze_model(lm);
  EXPECT_TRUE(has_code(diags, Code::kPlanPartition))
      << check::format_diagnostics(diags);
}

TEST(AnalysisMutation, NonCoveringDeltaByteRangeIsRefuted) {
  const auto m = build_mode(all_modes()[2]);  // fp64+delta
  LaunchModel lm = build_launch_model(m, {});
  ASSERT_TRUE(analyze_model(lm).empty());
  ASSERT_GT(lm.scatter.delta_ptr.size(), 1u);
  // Truncate the last row's byte range: the per-row ranges no longer cover
  // the encoded stream.
  lm.scatter.delta_ptr.back() -= 1;
  const auto diags = analyze_model(lm);
  EXPECT_TRUE(has_code(diags, Code::kDeltaStream))
      << check::format_diagnostics(diags);
}

TEST(AnalysisMutation, DivergentBarrierIsRefuted) {
  const auto m = build_mode(all_modes()[0]);
  LaunchModel lm = build_launch_model(m, {});
  ASSERT_TRUE(analyze_model(lm).empty());
  // Find a staged AD group and model a kernel where only half the
  // work-items reach its staging barrier.
  bool planted = false;
  for (auto& pm : lm.patterns) {
    for (auto& gm : pm.groups) {
      if (gm.adjacent && gm.num_diagonals >= 2) {
        gm.barrier_participating = lm.mrows / 2;
        planted = true;
        break;
      }
    }
    if (planted) break;
  }
  ASSERT_TRUE(planted) << "fixture needs a staged AD group";
  const auto diags = analyze_model(lm);
  EXPECT_TRUE(has_code(diags, Code::kBarrierDivergence))
      << check::format_diagnostics(diags);
}

TEST(AnalysisMutation, DuplicateScatterTargetIsRefuted) {
  const auto m = build_mode(all_modes()[0]);
  LaunchModel lm = build_launch_model(m, {});
  ASSERT_TRUE(analyze_model(lm).empty());
  ASSERT_GE(lm.scatter.rowno.size(), 2u);
  // Two scatter rows writing the same y row race with each other.
  lm.scatter.rowno[1] = lm.scatter.rowno[0];
  const auto diags = analyze_model(lm);
  EXPECT_TRUE(has_code(diags, Code::kWriteConflict))
      << check::format_diagnostics(diags);
}

TEST(Analysis, ExecPlanOverloadVerifiesRealPlan) {
  for (const int threads : {1, 2, 8}) {
    const auto m = build_mode(all_modes()[1]);
    const auto plan =
        ExecPlan<double>::inspect(m, {.num_threads = threads});
    const AnalysisReport rep = analyze_crsd_launch(m, plan, {});
    EXPECT_TRUE(rep.clean())
        << "threads=" << threads << ":\n"
        << check::format_diagnostics(rep.diagnostics);
  }
}

}  // namespace
}  // namespace crsd::analysis
