// Multi-device sharded SpMV suite: bitwise identity of the sharded sweep
// against the single-device launch across 1/2/4 devices and every storage
// mode, shard-plan structure, x-window coverage, the broken-partition
// mutation fixture, scatter-safe pipelined D2H, and memcheck-clean ranged
// launches. Suite names contain "MultiDevice" so the TSan CI job picks them
// up via its -R filter.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "check/memcheck.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/build_api.hpp"
#include "kernels/crsd_gpu.hpp"
#include "matrix/generators.hpp"
#include "runtime/multi_device.hpp"

namespace crsd::rt {
namespace {

using gpusim::Device;
using gpusim::DeviceSpec;

/// Structured + scatter mix engaging every builder feature, so shards carry
/// diagonal runs, ragged edges, and scatter rows.
Coo<double> mixed_matrix(int seed = 7) {
  Rng rng(seed);
  auto a = broken_diagonals(
      900, {{-96, 0.55, 4}, {-1, 1.0, 1}, {0, 1.0, 1}, {1, 0.9, 2},
            {96, 0.6, 5}},
      rng);
  inject_scatter(a, 70, rng);
  return a;
}

std::vector<StorageOptions> all_modes() {
  return {
      {},  // fp64, raw int32 scatter columns
      {ValuePrecision::kNative, true, false},
      {ValuePrecision::kNative, false, true},
      {ValuePrecision::kFloat32, true, false},
      {ValuePrecision::kFloat32, false, true},
      {ValuePrecision::kFloat16, true, false},
  };
}

std::string mode_name(const StorageOptions& s) {
  return std::string(value_precision_name(s.value_precision)) +
         (s.delta_scatter_indices ? "+delta"
                                  : (s.narrow_scatter_indices ? "+i16" : ""));
}

TEST(MultiDevice, ShardPlanPartitionsTheMatrix) {
  const auto a = mixed_matrix();
  const auto m = build(a, CrsdConfig{.mrows = 64});
  for (int nd : {1, 2, 3, 4}) {
    const auto shards = plan_shards(m, nd);
    EXPECT_EQ(static_cast<int>(shards.size()), nd);
    EXPECT_TRUE(validate_shard_partition(m, shards).empty()) << nd;
    for (const Shard& s : shards) {
      // The x-window covers the shard's own row span (main-diagonal reads).
      if (s.range.seg_begin == s.range.seg_end) continue;
      EXPECT_LE(s.range.x_begin, s.range.row_begin);
      EXPECT_GE(s.range.x_end, std::min(s.range.row_end, m.num_cols()));
    }
  }
}

TEST(MultiDevice, BitwiseIdenticalToSingleDeviceAcrossModes) {
  // The sharded sweep runs sub-ranges of the same built container, so the
  // merged y must equal the single-device launch bit for bit — for every
  // device count and every storage mode (quantized modes are deterministic
  // too, just quantized the same way on every path).
  const auto a = mixed_matrix();
  Rng rng(11);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  ThreadPool pool(4);

  for (const StorageOptions& mode : all_modes()) {
    CrsdConfig cfg;
    cfg.mrows = 64;
    cfg.storage = mode;
    const auto m = build(a, cfg);

    Device ref_dev(DeviceSpec::tesla_c2050());
    std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows()));
    kernels::gpu_spmv_crsd(ref_dev, m, x.data(), y_ref.data());

    for (int nd : {1, 2, 4}) {
      std::vector<Device> devs(static_cast<std::size_t>(nd),
                               Device(DeviceSpec::tesla_c2050()));
      std::vector<Device*> dev_ptrs;
      for (auto& d : devs) dev_ptrs.push_back(&d);

      const MultiDeviceSpmv<double> engine(m, nd);
      std::vector<double> y(static_cast<std::size_t>(a.num_rows()), -1.0);
      const MultiDeviceResult res = engine.run(dev_ptrs, x.data(), y.data(), pool);
      EXPECT_GT(res.makespan_seconds, 0.0);
      for (std::size_t i = 0; i < y.size(); ++i) {
        ASSERT_EQ(y[i], y_ref[i])
            << mode_name(mode) << " devices=" << nd << " row " << i;
      }
    }
  }
}

TEST(MultiDevice, ResidentVectorsSkipTransfers) {
  const auto a = mixed_matrix();
  const auto m = build(a, CrsdConfig{.mrows = 64});
  Rng rng(3);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows()));
  Device ref_dev(DeviceSpec::tesla_c2050());
  kernels::gpu_spmv_crsd(ref_dev, m, x.data(), y_ref.data());

  MultiDeviceOptions opts;
  opts.transfer_vectors = false;
  const MultiDeviceSpmv<double> engine(m, 2, opts);
  std::vector<Device> devs(2, Device(DeviceSpec::tesla_c2050()));
  std::vector<Device*> dev_ptrs{&devs[0], &devs[1]};
  ThreadPool pool(4);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  const MultiDeviceResult res = engine.run(dev_ptrs, x.data(), y.data(), pool);
  EXPECT_EQ(res.h2d_seconds, 0.0);
  EXPECT_EQ(res.d2h_seconds, 0.0);
  EXPECT_GT(res.compute_seconds, 0.0);
  for (std::size_t i = 0; i < y.size(); ++i) {
    ASSERT_EQ(y[i], y_ref[i]) << "row " << i;
  }
}

TEST(MultiDevice, TwoDevicesBeatOneOnTheVirtualTimeline) {
  // Balanced halves of a large dense band should nearly halve the modeled
  // makespan; anything under 1.2x means the scheduler serialized the shards.
  const auto a = dense_band(16384, 32);
  const auto m = build(a, CrsdConfig{.mrows = 64});
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  ThreadPool pool(4);

  double t1 = 0.0, t2 = 0.0;
  for (int nd : {1, 2}) {
    std::vector<Device> devs(static_cast<std::size_t>(nd),
                             Device(DeviceSpec::tesla_c2050()));
    std::vector<Device*> dev_ptrs;
    for (auto& d : devs) dev_ptrs.push_back(&d);
    const MultiDeviceSpmv<double> engine(m, nd);
    const double t = engine.run(dev_ptrs, x.data(), y.data(), pool)
                         .makespan_seconds;
    (nd == 1 ? t1 : t2) = t;
  }
  EXPECT_GT(t1 / t2, 1.2) << "1-dev " << t1 << "s vs 2-dev " << t2 << "s";
}

TEST(MultiDevice, OverlapHidesMostTransferTime) {
  const auto a = dense_band(16384, 32);
  const auto m = build(a, CrsdConfig{.mrows = 64});
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  ThreadPool pool(4);
  Device dev(DeviceSpec::tesla_c2050());
  const MultiDeviceSpmv<double> engine(m, 1);
  const MultiDeviceResult res = engine.run({&dev}, x.data(), y.data(), pool);
  EXPECT_GT(res.h2d_seconds, 0.0);
  EXPECT_GT(res.overlap_efficiency, 0.5)
      << "h2d " << res.h2d_seconds << "s compute " << res.compute_seconds
      << "s makespan " << res.makespan_seconds << "s";
  EXPECT_LE(res.overlap_efficiency, 1.0 + 1e-12);
}

TEST(MultiDevice, BrokenPartitionIsRejected) {
  const auto a = mixed_matrix();
  const auto m = build(a, CrsdConfig{.mrows = 64});

  // Overlapping segment runs.
  {
    auto shards = plan_shards(m, 2);
    shards[1].range.seg_begin -= 1;  // overlaps shard 0's run
    try {
      const MultiDeviceSpmv<double> engine(m, shards);
      FAIL() << "overlapping shards accepted";
    } catch (const check::DiagnosticError& e) {
      ASSERT_FALSE(e.diagnostics().empty());
      EXPECT_EQ(e.diagnostics()[0].code, check::Code::kPlanPartition);
    }
  }
  // A gap at the tail (matrix not covered).
  {
    auto shards = plan_shards(m, 2);
    shards.pop_back();
    EXPECT_THROW(MultiDeviceSpmv<double>(m, shards), check::DiagnosticError);
  }
  // Row slice inconsistent with the segment run.
  {
    auto shards = plan_shards(m, 2);
    shards[0].range.row_end -= 1;
    EXPECT_THROW(MultiDeviceSpmv<double>(m, shards), check::DiagnosticError);
  }
}

TEST(MultiDevice, RangedLaunchesAreMemcheckClean) {
  // Every shard of every mode runs under the simulator's checking mode:
  // in-bounds accesses and no races within each ranged launch.
  const auto a = mixed_matrix();
  Rng rng(5);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);

  for (const StorageOptions& mode : all_modes()) {
    CrsdConfig cfg;
    cfg.mrows = 64;
    cfg.storage = mode;
    const auto m = build(a, cfg);
    const auto shards = plan_shards(m, 3);
    for (const Shard& s : shards) {
      Device dev(DeviceSpec::tesla_c2050());
      check::MemChecker chk(dev.spec());
      kernels::CrsdGpuOptions opts;
      opts.checker = &chk;
      std::vector<double> xw(static_cast<std::size_t>(s.x_elems()));
      for (index_t i = 0; i < s.x_elems(); ++i) {
        xw[static_cast<std::size_t>(i)] =
            x[static_cast<std::size_t>(s.range.x_begin + i)];
      }
      std::vector<double> yw(static_cast<std::size_t>(s.y_elems()));
      kernels::gpu_spmv_crsd_range(dev, m, s.range, xw.data(), yw.data(),
                                   opts);
      EXPECT_TRUE(chk.clean()) << mode_name(mode) << " shard ["
                               << s.range.seg_begin << ", " << s.range.seg_end
                               << "):\n" << chk.report();
    }
  }
}

}  // namespace
}  // namespace crsd::rt
