# Empty compiler generated dependencies file for bench_fig7_gpu_double.
# This may be replaced when dependencies are built.
