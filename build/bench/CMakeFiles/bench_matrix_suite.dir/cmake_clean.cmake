file(REMOVE_RECURSE
  "CMakeFiles/bench_matrix_suite.dir/bench_matrix_suite.cpp.o"
  "CMakeFiles/bench_matrix_suite.dir/bench_matrix_suite.cpp.o.d"
  "bench_matrix_suite"
  "bench_matrix_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matrix_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
