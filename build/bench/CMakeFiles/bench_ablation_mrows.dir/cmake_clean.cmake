file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mrows.dir/bench_ablation_mrows.cpp.o"
  "CMakeFiles/bench_ablation_mrows.dir/bench_ablation_mrows.cpp.o.d"
  "bench_ablation_mrows"
  "bench_ablation_mrows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mrows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
