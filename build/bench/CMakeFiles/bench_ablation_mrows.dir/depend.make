# Empty dependencies file for bench_ablation_mrows.
# This may be replaced when dependencies are built.
