file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fill.dir/bench_ablation_fill.cpp.o"
  "CMakeFiles/bench_ablation_fill.dir/bench_ablation_fill.cpp.o.d"
  "bench_ablation_fill"
  "bench_ablation_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
