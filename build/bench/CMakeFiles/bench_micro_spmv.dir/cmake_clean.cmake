file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_spmv.dir/bench_micro_spmv.cpp.o"
  "CMakeFiles/bench_micro_spmv.dir/bench_micro_spmv.cpp.o.d"
  "bench_micro_spmv"
  "bench_micro_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
