# Empty compiler generated dependencies file for bench_micro_spmv.
# This may be replaced when dependencies are built.
