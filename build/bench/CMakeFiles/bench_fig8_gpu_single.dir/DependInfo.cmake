
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_gpu_single.cpp" "bench/CMakeFiles/bench_fig8_gpu_single.dir/bench_fig8_gpu_single.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_gpu_single.dir/bench_fig8_gpu_single.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/crsd_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/crsd_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/crsd_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/crsd_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/crsd_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crsd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/crsd_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
