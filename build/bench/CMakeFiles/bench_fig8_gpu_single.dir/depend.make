# Empty dependencies file for bench_fig8_gpu_single.
# This may be replaced when dependencies are built.
