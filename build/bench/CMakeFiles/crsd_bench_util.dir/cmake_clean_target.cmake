file(REMOVE_RECURSE
  "lib/libcrsd_bench_util.a"
)
