# Empty compiler generated dependencies file for crsd_bench_util.
# This may be replaced when dependencies are built.
