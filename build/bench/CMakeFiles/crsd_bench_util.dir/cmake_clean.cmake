file(REMOVE_RECURSE
  "CMakeFiles/crsd_bench_util.dir/cpu_suite.cpp.o"
  "CMakeFiles/crsd_bench_util.dir/cpu_suite.cpp.o.d"
  "CMakeFiles/crsd_bench_util.dir/suite_runner.cpp.o"
  "CMakeFiles/crsd_bench_util.dir/suite_runner.cpp.o.d"
  "lib/libcrsd_bench_util.a"
  "lib/libcrsd_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crsd_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
