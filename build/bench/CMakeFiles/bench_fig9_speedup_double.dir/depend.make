# Empty dependencies file for bench_fig9_speedup_double.
# This may be replaced when dependencies are built.
