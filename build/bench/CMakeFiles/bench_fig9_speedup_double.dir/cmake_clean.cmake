file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_speedup_double.dir/bench_fig9_speedup_double.cpp.o"
  "CMakeFiles/bench_fig9_speedup_double.dir/bench_fig9_speedup_double.cpp.o.d"
  "bench_fig9_speedup_double"
  "bench_fig9_speedup_double.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_speedup_double.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
