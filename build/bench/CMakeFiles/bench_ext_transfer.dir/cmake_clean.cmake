file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_transfer.dir/bench_ext_transfer.cpp.o"
  "CMakeFiles/bench_ext_transfer.dir/bench_ext_transfer.cpp.o.d"
  "bench_ext_transfer"
  "bench_ext_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
