# Empty dependencies file for bench_fig10_speedup_single.
# This may be replaced when dependencies are built.
