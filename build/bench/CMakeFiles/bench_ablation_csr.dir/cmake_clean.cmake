file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_csr.dir/bench_ablation_csr.cpp.o"
  "CMakeFiles/bench_ablation_csr.dir/bench_ablation_csr.cpp.o.d"
  "bench_ablation_csr"
  "bench_ablation_csr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
