# Empty dependencies file for bench_ext_solver.
# This may be replaced when dependencies are built.
