file(REMOVE_RECURSE
  "CMakeFiles/bench_claims_check.dir/bench_claims_check.cpp.o"
  "CMakeFiles/bench_claims_check.dir/bench_claims_check.cpp.o.d"
  "bench_claims_check"
  "bench_claims_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claims_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
