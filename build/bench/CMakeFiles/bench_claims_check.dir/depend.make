# Empty dependencies file for bench_claims_check.
# This may be replaced when dependencies are built.
