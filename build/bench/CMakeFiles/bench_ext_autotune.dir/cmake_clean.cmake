file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_autotune.dir/bench_ext_autotune.cpp.o"
  "CMakeFiles/bench_ext_autotune.dir/bench_ext_autotune.cpp.o.d"
  "bench_ext_autotune"
  "bench_ext_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
