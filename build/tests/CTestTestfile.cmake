# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_paper_suite[1]_include.cmake")
include("/root/repo/build/tests/test_formats[1]_include.cmake")
include("/root/repo/build/tests/test_crsd_core[1]_include.cmake")
include("/root/repo/build/tests/test_property_spmv[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_perf_model[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_related_formats[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_codelet[1]_include.cmake")
include("/root/repo/build/tests/test_reorder_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_coverage_extra[1]_include.cmake")
include("/root/repo/build/tests/test_gmres[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_update_values[1]_include.cmake")
include("/root/repo/build/tests/test_suite_runner[1]_include.cmake")
include("/root/repo/build/tests/test_validation[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_cg[1]_include.cmake")
