# Empty dependencies file for test_update_values.
# This may be replaced when dependencies are built.
