file(REMOVE_RECURSE
  "CMakeFiles/test_update_values.dir/update_values_test.cpp.o"
  "CMakeFiles/test_update_values.dir/update_values_test.cpp.o.d"
  "test_update_values"
  "test_update_values.pdb"
  "test_update_values[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
