file(REMOVE_RECURSE
  "CMakeFiles/test_paper_suite.dir/paper_suite_test.cpp.o"
  "CMakeFiles/test_paper_suite.dir/paper_suite_test.cpp.o.d"
  "test_paper_suite"
  "test_paper_suite.pdb"
  "test_paper_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
