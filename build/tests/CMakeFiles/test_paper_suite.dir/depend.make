# Empty dependencies file for test_paper_suite.
# This may be replaced when dependencies are built.
