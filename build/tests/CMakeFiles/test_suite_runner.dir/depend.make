# Empty dependencies file for test_suite_runner.
# This may be replaced when dependencies are built.
