file(REMOVE_RECURSE
  "CMakeFiles/test_suite_runner.dir/suite_runner_test.cpp.o"
  "CMakeFiles/test_suite_runner.dir/suite_runner_test.cpp.o.d"
  "test_suite_runner"
  "test_suite_runner.pdb"
  "test_suite_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
