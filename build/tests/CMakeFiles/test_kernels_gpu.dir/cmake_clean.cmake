file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_gpu.dir/kernels_gpu_test.cpp.o"
  "CMakeFiles/test_kernels_gpu.dir/kernels_gpu_test.cpp.o.d"
  "test_kernels_gpu"
  "test_kernels_gpu.pdb"
  "test_kernels_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
