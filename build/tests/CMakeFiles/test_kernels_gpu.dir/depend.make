# Empty dependencies file for test_kernels_gpu.
# This may be replaced when dependencies are built.
