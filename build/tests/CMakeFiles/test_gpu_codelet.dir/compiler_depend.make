# Empty compiler generated dependencies file for test_gpu_codelet.
# This may be replaced when dependencies are built.
