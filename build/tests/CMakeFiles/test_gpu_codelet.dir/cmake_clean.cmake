file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_codelet.dir/gpu_codelet_test.cpp.o"
  "CMakeFiles/test_gpu_codelet.dir/gpu_codelet_test.cpp.o.d"
  "test_gpu_codelet"
  "test_gpu_codelet.pdb"
  "test_gpu_codelet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_codelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
