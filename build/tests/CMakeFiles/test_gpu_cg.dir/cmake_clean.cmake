file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_cg.dir/gpu_cg_test.cpp.o"
  "CMakeFiles/test_gpu_cg.dir/gpu_cg_test.cpp.o.d"
  "test_gpu_cg"
  "test_gpu_cg.pdb"
  "test_gpu_cg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
