# Empty dependencies file for test_gpu_cg.
# This may be replaced when dependencies are built.
