# Empty dependencies file for test_related_formats.
# This may be replaced when dependencies are built.
