file(REMOVE_RECURSE
  "CMakeFiles/test_related_formats.dir/related_formats_test.cpp.o"
  "CMakeFiles/test_related_formats.dir/related_formats_test.cpp.o.d"
  "test_related_formats"
  "test_related_formats.pdb"
  "test_related_formats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_related_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
