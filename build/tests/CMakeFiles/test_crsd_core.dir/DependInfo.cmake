
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crsd_core_test.cpp" "tests/CMakeFiles/test_crsd_core.dir/crsd_core_test.cpp.o" "gcc" "tests/CMakeFiles/test_crsd_core.dir/crsd_core_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crsd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/crsd_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/crsd_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crsd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
