file(REMOVE_RECURSE
  "CMakeFiles/test_crsd_core.dir/crsd_core_test.cpp.o"
  "CMakeFiles/test_crsd_core.dir/crsd_core_test.cpp.o.d"
  "test_crsd_core"
  "test_crsd_core.pdb"
  "test_crsd_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crsd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
