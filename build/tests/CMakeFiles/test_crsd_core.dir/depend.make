# Empty dependencies file for test_crsd_core.
# This may be replaced when dependencies are built.
