file(REMOVE_RECURSE
  "CMakeFiles/test_property_spmv.dir/property_spmv_test.cpp.o"
  "CMakeFiles/test_property_spmv.dir/property_spmv_test.cpp.o.d"
  "test_property_spmv"
  "test_property_spmv.pdb"
  "test_property_spmv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
