# Empty compiler generated dependencies file for test_reorder_serialize.
# This may be replaced when dependencies are built.
