file(REMOVE_RECURSE
  "CMakeFiles/test_reorder_serialize.dir/reorder_serialize_test.cpp.o"
  "CMakeFiles/test_reorder_serialize.dir/reorder_serialize_test.cpp.o.d"
  "test_reorder_serialize"
  "test_reorder_serialize.pdb"
  "test_reorder_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reorder_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
