file(REMOVE_RECURSE
  "libcrsd_common.a"
)
