# Empty dependencies file for crsd_common.
# This may be replaced when dependencies are built.
