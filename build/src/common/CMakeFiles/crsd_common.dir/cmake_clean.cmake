file(REMOVE_RECURSE
  "CMakeFiles/crsd_common.dir/log.cpp.o"
  "CMakeFiles/crsd_common.dir/log.cpp.o.d"
  "CMakeFiles/crsd_common.dir/table.cpp.o"
  "CMakeFiles/crsd_common.dir/table.cpp.o.d"
  "CMakeFiles/crsd_common.dir/thread_pool.cpp.o"
  "CMakeFiles/crsd_common.dir/thread_pool.cpp.o.d"
  "libcrsd_common.a"
  "libcrsd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crsd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
