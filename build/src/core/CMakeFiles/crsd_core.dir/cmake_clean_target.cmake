file(REMOVE_RECURSE
  "libcrsd_core.a"
)
