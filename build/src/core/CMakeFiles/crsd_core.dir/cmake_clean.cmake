file(REMOVE_RECURSE
  "CMakeFiles/crsd_core.dir/pattern.cpp.o"
  "CMakeFiles/crsd_core.dir/pattern.cpp.o.d"
  "libcrsd_core.a"
  "libcrsd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crsd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
