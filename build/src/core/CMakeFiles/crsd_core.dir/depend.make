# Empty dependencies file for crsd_core.
# This may be replaced when dependencies are built.
