file(REMOVE_RECURSE
  "CMakeFiles/crsd_matrix.dir/generators.cpp.o"
  "CMakeFiles/crsd_matrix.dir/generators.cpp.o.d"
  "CMakeFiles/crsd_matrix.dir/matrix_market.cpp.o"
  "CMakeFiles/crsd_matrix.dir/matrix_market.cpp.o.d"
  "CMakeFiles/crsd_matrix.dir/paper_suite.cpp.o"
  "CMakeFiles/crsd_matrix.dir/paper_suite.cpp.o.d"
  "libcrsd_matrix.a"
  "libcrsd_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crsd_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
