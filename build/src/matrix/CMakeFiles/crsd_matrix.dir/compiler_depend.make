# Empty compiler generated dependencies file for crsd_matrix.
# This may be replaced when dependencies are built.
