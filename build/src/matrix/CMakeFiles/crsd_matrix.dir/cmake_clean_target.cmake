file(REMOVE_RECURSE
  "libcrsd_matrix.a"
)
