file(REMOVE_RECURSE
  "libcrsd_gpusim.a"
)
