file(REMOVE_RECURSE
  "CMakeFiles/crsd_gpusim.dir/executor.cpp.o"
  "CMakeFiles/crsd_gpusim.dir/executor.cpp.o.d"
  "libcrsd_gpusim.a"
  "libcrsd_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crsd_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
