# Empty dependencies file for crsd_gpusim.
# This may be replaced when dependencies are built.
