# Empty dependencies file for crsd_perf.
# This may be replaced when dependencies are built.
