file(REMOVE_RECURSE
  "CMakeFiles/crsd_perf.dir/cpu_model.cpp.o"
  "CMakeFiles/crsd_perf.dir/cpu_model.cpp.o.d"
  "libcrsd_perf.a"
  "libcrsd_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crsd_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
