file(REMOVE_RECURSE
  "libcrsd_perf.a"
)
