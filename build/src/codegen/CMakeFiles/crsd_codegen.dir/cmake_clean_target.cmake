file(REMOVE_RECURSE
  "libcrsd_codegen.a"
)
