
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/crsd_codegen.cpp" "src/codegen/CMakeFiles/crsd_codegen.dir/crsd_codegen.cpp.o" "gcc" "src/codegen/CMakeFiles/crsd_codegen.dir/crsd_codegen.cpp.o.d"
  "/root/repo/src/codegen/jit.cpp" "src/codegen/CMakeFiles/crsd_codegen.dir/jit.cpp.o" "gcc" "src/codegen/CMakeFiles/crsd_codegen.dir/jit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crsd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crsd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/crsd_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
