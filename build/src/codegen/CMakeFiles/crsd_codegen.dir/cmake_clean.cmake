file(REMOVE_RECURSE
  "CMakeFiles/crsd_codegen.dir/crsd_codegen.cpp.o"
  "CMakeFiles/crsd_codegen.dir/crsd_codegen.cpp.o.d"
  "CMakeFiles/crsd_codegen.dir/jit.cpp.o"
  "CMakeFiles/crsd_codegen.dir/jit.cpp.o.d"
  "libcrsd_codegen.a"
  "libcrsd_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crsd_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
