# Empty compiler generated dependencies file for crsd_codegen.
# This may be replaced when dependencies are built.
