# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("matrix")
subdirs("formats")
subdirs("core")
subdirs("gpusim")
subdirs("kernels")
subdirs("codegen")
subdirs("solver")
subdirs("perf")
subdirs("hybrid")
