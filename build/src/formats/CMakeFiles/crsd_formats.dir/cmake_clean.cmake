file(REMOVE_RECURSE
  "CMakeFiles/crsd_formats.dir/format.cpp.o"
  "CMakeFiles/crsd_formats.dir/format.cpp.o.d"
  "libcrsd_formats.a"
  "libcrsd_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crsd_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
