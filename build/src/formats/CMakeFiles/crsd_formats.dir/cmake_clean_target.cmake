file(REMOVE_RECURSE
  "libcrsd_formats.a"
)
