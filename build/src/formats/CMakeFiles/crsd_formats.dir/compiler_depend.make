# Empty compiler generated dependencies file for crsd_formats.
# This may be replaced when dependencies are built.
