# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper_figures "/root/repo/build/examples/paper_figures")
set_tests_properties(example_paper_figures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_poisson_cg "/root/repo/build/examples/poisson_cg" "32")
set_tests_properties(example_poisson_cg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_astro_spmv "/root/repo/build/examples/astro_spmv" "12" "12" "8")
set_tests_properties(example_astro_spmv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_format_advisor "/root/repo/build/examples/format_advisor" "--suite" "kim1" "--scale" "0.02")
set_tests_properties(example_format_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tuned_pipeline "/root/repo/build/examples/tuned_pipeline")
set_tests_properties(example_tuned_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_crsd_cli "/root/repo/build/examples/crsd_cli" "analyze" "suite:s80_80_50:0.02")
set_tests_properties(example_crsd_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
