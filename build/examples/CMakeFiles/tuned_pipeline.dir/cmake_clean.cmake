file(REMOVE_RECURSE
  "CMakeFiles/tuned_pipeline.dir/tuned_pipeline.cpp.o"
  "CMakeFiles/tuned_pipeline.dir/tuned_pipeline.cpp.o.d"
  "tuned_pipeline"
  "tuned_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuned_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
