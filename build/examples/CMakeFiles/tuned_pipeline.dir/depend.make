# Empty dependencies file for tuned_pipeline.
# This may be replaced when dependencies are built.
