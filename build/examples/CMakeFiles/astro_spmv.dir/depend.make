# Empty dependencies file for astro_spmv.
# This may be replaced when dependencies are built.
