file(REMOVE_RECURSE
  "CMakeFiles/astro_spmv.dir/astro_spmv.cpp.o"
  "CMakeFiles/astro_spmv.dir/astro_spmv.cpp.o.d"
  "astro_spmv"
  "astro_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astro_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
