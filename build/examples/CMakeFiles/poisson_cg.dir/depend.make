# Empty dependencies file for poisson_cg.
# This may be replaced when dependencies are built.
