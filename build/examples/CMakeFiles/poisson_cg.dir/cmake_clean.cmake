file(REMOVE_RECURSE
  "CMakeFiles/poisson_cg.dir/poisson_cg.cpp.o"
  "CMakeFiles/poisson_cg.dir/poisson_cg.cpp.o.d"
  "poisson_cg"
  "poisson_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
