file(REMOVE_RECURSE
  "CMakeFiles/crsd_cli.dir/crsd_cli.cpp.o"
  "CMakeFiles/crsd_cli.dir/crsd_cli.cpp.o.d"
  "crsd_cli"
  "crsd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crsd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
