# Empty dependencies file for crsd_cli.
# This may be replaced when dependencies are built.
